#include "analysis/stream.hpp"

#include <algorithm>

namespace cgn::analysis {

namespace {

int range_index(netcore::ReservedRange r) {
  return static_cast<int>(r) - 1;  // r != none
}

netcore::Asn session_asn(const netalyzr::SessionResult& s,
                         const netcore::RoutingTable& routes) {
  if (s.ip_pub) {
    if (auto asn = routes.origin_of(*s.ip_pub)) return *asn;
  }
  return s.asn;  // fallback: vantage-point ground truth
}

bool translated_row(Table4Row r) {
  return r != Table4Row::routed_match;
}

void tally(Table4Column& col, Table4Row row) {
  ++col.n;
  ++col.rows[static_cast<std::size_t>(row)];
}

}  // namespace

// --- StreamingBtAnalyzer::OnlineLeakGraph --------------------------------

std::size_t StreamingBtAnalyzer::OnlineLeakGraph::intern(
    std::unordered_map<crawler::PeerKey, std::size_t, crawler::PeerKeyHash>& m,
    const crawler::PeerKey& k, bool is_public) {
  auto [it, inserted] = m.try_emplace(k, 0);
  if (inserted) {
    const std::size_t idx = uf.add_vertex();
    it->second = idx;
    Tally& t = tally_of_root[idx];
    if (is_public)
      t.public_ips.insert(k.contact.endpoint.address);
    else
      t.internal_ips.insert(k.contact.endpoint.address);
  }
  return it->second;
}

void StreamingBtAnalyzer::OnlineLeakGraph::link(const dht::Contact& leaker,
                                                const dht::Contact& internal) {
  const std::size_t u =
      intern(vertex_of_public, crawler::PeerKey{leaker}, true);
  const std::size_t v =
      intern(vertex_of_internal, crawler::PeerKey{internal}, false);
  const std::size_t ru = uf.find(u);
  const std::size_t rv = uf.find(v);
  if (ru == rv) return;  // already one component; IPs already tallied

  auto node_u = tally_of_root.extract(ru);
  auto node_v = tally_of_root.extract(rv);
  Tally tu = std::move(node_u.mapped());
  Tally tv = std::move(node_v.mapped());
  // Small-into-large: each IP moves O(log n) times over a graph's life.
  if (tu.public_ips.size() + tu.internal_ips.size() <
      tv.public_ips.size() + tv.internal_ips.size())
    std::swap(tu, tv);
  tu.public_ips.insert(tv.public_ips.begin(), tv.public_ips.end());
  tu.internal_ips.insert(tv.internal_ips.begin(), tv.internal_ips.end());

  uf.unite(ru, rv);
  const ClusterSize cand{tu.public_ips.size(), tu.internal_ips.size()};
  if (better_cluster(cand, largest)) largest = cand;
  tally_of_root[uf.find(ru)] = std::move(tu);
}

void StreamingBtAnalyzer::OnlineLeakGraph::add_edge(
    const dht::Contact& leaker, const dht::Contact& internal) {
  edges.push_back(crawler::LeakEdge{leaker, internal});
  link(leaker, internal);
}

void StreamingBtAnalyzer::OnlineLeakGraph::retract_internal(
    const crawler::PeerKey& internal) {
  std::erase_if(edges, [&](const crawler::LeakEdge& e) {
    return crawler::PeerKey{e.internal} == internal;
  });
  vertex_of_public.clear();
  vertex_of_internal.clear();
  uf.clear();
  tally_of_root.clear();
  largest = ClusterSize{};
  for (const crawler::LeakEdge& e : edges) link(e.leaker, e.internal);
}

// --- StreamingBtAnalyzer --------------------------------------------------

void StreamingBtAnalyzer::note_queried(const dht::Contact& c) {
  ++events_;
  // Per-AS counts are per unique *peer* (batch iterates the deduplicated
  // queried set), so a replayed duplicate must not double-count.
  if (queried_.insert(crawler::PeerKey{c}).second) {
    queried_ips_.insert(c.endpoint.address);
    if (auto asn = routes_.origin_of(c.endpoint.address))
      ++queried_per_as_[*asn];
  }
}

void StreamingBtAnalyzer::note_learned(const dht::Contact& c) {
  ++events_;
  if (learned_.insert(crawler::PeerKey{c}).second) {
    learned_ips_.insert(c.endpoint.address);
    if (auto asn = routes_.origin_of(c.endpoint.address))
      learned_ases_.insert(*asn);
  }
}

void StreamingBtAnalyzer::note_ping_response(const dht::Contact& c) {
  ++events_;
  if (responders_.insert(crawler::PeerKey{c}).second)
    responder_ips_.insert(c.endpoint.address);
}

void StreamingBtAnalyzer::note_leak(const dht::Contact& leaker,
                                    const dht::Contact& internal) {
  ++events_;
  ++leaks_;
  const auto range = netcore::classify_reserved(internal.endpoint.address);
  if (range == netcore::ReservedRange::none) return;
  const auto asn = routes_.origin_of(leaker.endpoint.address);

  RangeAgg& a = agg_[static_cast<std::size_t>(range_index(range))];
  const crawler::PeerKey internal_key{internal};
  a.internal_peers.insert(internal_key);
  a.internal_ips.insert(internal.endpoint.address);
  a.leaking_peers.insert(crawler::PeerKey{leaker});
  a.leaking_ips.insert(leaker.endpoint.address);
  if (!asn) return;
  a.leaking_ases.insert(*asn);

  auto& leaker_ases = leaker_ases_of_[internal_key];
  const bool new_as = leaker_ases.insert(*asn).second;
  const std::uint64_t key =
      std::uint64_t{*asn} * 8 +
      static_cast<std::uint64_t>(range_index(range));
  if (leaker_ases.size() == 1) {
    graphs_[key].add_edge(leaker, internal);
  } else if (new_as && leaker_ases.size() == 2) {
    // The peer just became multi-AS — a likely VPN artifact. Retract the
    // edges the first AS's graph accepted while the peer looked exclusive;
    // from now on the peer's edges are dropped on arrival, which is
    // exactly the batch post-filter outcome.
    for (netcore::Asn prior : leaker_ases) {
      if (prior == *asn) continue;
      auto it = graphs_.find(std::uint64_t{prior} * 8 +
                             static_cast<std::uint64_t>(range_index(range)));
      if (it != graphs_.end()) it->second.retract_internal(internal_key);
    }
  }
}

BtDetectionResult StreamingBtAnalyzer::snapshot() const {
  BtDetectionResult out;

  out.summary.queried_peers = queried_.size();
  out.summary.queried_unique_ips = queried_ips_.size();
  out.summary.queried_ases = queried_per_as_.size();
  out.summary.learned_peers = learned_.size();
  out.summary.learned_unique_ips = learned_ips_.size();
  out.summary.learned_ases = learned_ases_.size();
  out.summary.responding_peers = responders_.size();
  out.summary.responding_unique_ips = responder_ips_.size();

  for (int r = 0; r < netcore::kReservedRangeCount; ++r) {
    const RangeAgg& a = agg_[static_cast<std::size_t>(r)];
    RangeLeakStats& row = out.per_range[static_cast<std::size_t>(r)];
    row.internal_total = a.internal_peers.size();
    row.internal_unique_ips = a.internal_ips.size();
    row.leaking_total = a.leaking_peers.size();
    row.leaking_unique_ips = a.leaking_ips.size();
    row.leaking_ases = a.leaking_ases.size();
  }

  for (const auto& [asn, count] : queried_per_as_) {
    AsBtVerdict& v = out.per_as[asn];
    v.asn = asn;
    v.queried_peers = count;
    v.covered = count >= config_.min_queried_peers;
  }

  for (const auto& [key, g] : graphs_) {
    if (g.edges.empty()) continue;  // fully retracted: no surviving leaks
    const auto asn = static_cast<netcore::Asn>(key / 8);
    const auto r = static_cast<std::size_t>(key % 8);
    AsBtVerdict& v = out.per_as[asn];
    v.asn = asn;
    v.largest[r] = g.largest;
  }

  // Detection + detected_ranges from the per-range maxima, in range order
  // (deterministic regardless of graph iteration order), then the coverage
  // gate: positives in under-covered ASes are dropped.
  for (auto& [asn, v] : out.per_as) {
    for (std::size_t r = 0; r < v.largest.size(); ++r) {
      const ClusterSize& c = v.largest[r];
      if (c.public_ips >= config_.min_cluster_public_ips &&
          c.internal_ips >= config_.min_cluster_internal_ips) {
        v.cgn_positive = true;
        v.detected_ranges.push_back(
            static_cast<netcore::ReservedRange>(r + 1));
      }
    }
    if (!v.covered) v.cgn_positive = false;
  }

  return out;
}

// --- StreamingNetalyzrClassifier -----------------------------------------

void StreamingNetalyzrClassifier::ingest(const netalyzr::SessionResult& s) {
  ++sessions_;
  const Table4Row dev_row = table4_row(s.ip_dev, s.ip_pub, routes_);
  if (s.cellular) {
    tally(table4_.cellular_dev, dev_row);
  } else {
    tally(table4_.noncellular_dev, dev_row);
    ++dev_block_count_[netcore::slash24_of(s.ip_dev)];
    if (s.ip_cpe)
      tally(table4_.noncellular_cpe, table4_row(*s.ip_cpe, s.ip_pub, routes_));
  }
  AsAgg& g = groups_[session_asn(s, routes_)];
  g.cellular = s.cellular;  // ASes are homogeneous in network type
  g.sessions.push_back(CompactSession{s.ip_dev, s.ip_cpe, s.ip_pub});
}

NetalyzrDetectionResult StreamingNetalyzrClassifier::snapshot() const {
  NetalyzrDetectionResult out;
  out.table4 = table4_;

  {
    std::vector<std::pair<netcore::Ipv4Prefix, std::size_t>> blocks(
        dev_block_count_.begin(), dev_block_count_.end());
    // Count-descending with the prefix value as tie-break: a total order,
    // so the top-N cut is independent of hash-map iteration order.
    std::sort(blocks.begin(), blocks.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    for (std::size_t i = 0; i < blocks.size() && i < config_.top_cpe_blocks;
         ++i)
      out.cpe_blocks.push_back(blocks[i].first);
  }
  auto in_cpe_block = [&](netcore::Ipv4Address a) {
    auto p24 = netcore::slash24_of(a);
    return std::find(out.cpe_blocks.begin(), out.cpe_blocks.end(), p24) !=
           out.cpe_blocks.end();
  };

  for (const auto& [asn, g] : groups_) {
    AsNetalyzrVerdict v;
    v.asn = asn;
    v.cellular = g.cellular;
    v.sessions = g.sessions.size();

    if (g.cellular) {
      v.covered = v.sessions >= config_.min_cellular_sessions;
      std::size_t translated = 0;
      for (const CompactSession& s : g.sessions) {
        const Table4Row row = table4_row(s.ip_dev, s.ip_pub, routes_);
        if (translated_row(row)) ++translated;
        const auto range = netcore::classify_reserved(s.ip_dev);
        if (range != netcore::ReservedRange::none) {
          v.internal_ranges.insert(range);
        } else if (row == Table4Row::unrouted ||
                   row == Table4Row::routed_mismatch) {
          // Routable (or nominally public) space used internally: Fig 7(b).
          v.uses_routable_internal = true;
          v.routable_internal_slash8.insert(s.ip_dev.octet(0));
        }
      }
      if (translated == 0)
        v.assignment = CellularAssignment::public_only;
      else if (translated == g.sessions.size())
        v.assignment = CellularAssignment::internal_only;
      else
        v.assignment = CellularAssignment::mixed;
      v.cgn_positive = translated > 0;
    } else {
      v.covered = v.sessions >= config_.min_noncellular_sessions;
      std::unordered_set<netcore::Ipv4Prefix> cpe24;
      std::array<std::unordered_set<netcore::Ipv4Prefix>,
                 netcore::kReservedRangeCount>
          cpe24_by_range;
      for (const CompactSession& s : g.sessions) {
        if (!s.ip_cpe || !s.ip_pub) continue;
        if (*s.ip_cpe == *s.ip_pub) continue;    // single NAT only
        if (in_cpe_block(*s.ip_cpe)) continue;   // likely a second CPE
        ++v.candidate_sessions;
        auto p24 = netcore::slash24_of(*s.ip_cpe);
        cpe24.insert(p24);
        const auto range = netcore::classify_reserved(*s.ip_cpe);
        if (range != netcore::ReservedRange::none) {
          auto idx = static_cast<std::size_t>(static_cast<int>(range) - 1);
          ++v.fig5[idx].candidate_sessions;
          cpe24_by_range[idx].insert(p24);
          v.internal_ranges.insert(range);
        } else {
          const Table4Row row = table4_row(*s.ip_cpe, s.ip_pub, routes_);
          if (row == Table4Row::unrouted ||
              row == Table4Row::routed_mismatch) {
            v.uses_routable_internal = true;
            v.routable_internal_slash8.insert(s.ip_cpe->octet(0));
          }
        }
      }
      v.unique_cpe_slash24 = cpe24.size();
      for (std::size_t r = 0; r < cpe24_by_range.size(); ++r)
        v.fig5[r].unique_slash24 = cpe24_by_range[r].size();
      v.cgn_positive =
          v.candidate_sessions >= config_.min_candidate_sessions &&
          static_cast<double>(v.unique_cpe_slash24) >=
              config_.slash24_diversity_factor *
                  static_cast<double>(v.candidate_sessions);
    }
    out.per_as.emplace(asn, std::move(v));
  }

  return out;
}

}  // namespace cgn::analysis
