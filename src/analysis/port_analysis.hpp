// Port- and IP-allocation analysis (paper §6.2: Figures 8-9, Table 6).
//
// From the ten-flow port-translation test: classify each session's strategy
// (preservation / sequential / random, with the paper's leeway rules), roll
// up per-AS strategy mixes, detect chunk-based random allocation and
// estimate per-subscriber chunk sizes, and measure NAT pooling behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netalyzr/session.hpp"
#include "netcore/routing_table.hpp"

namespace cgn::analysis {

enum class PortStrategy : std::uint8_t { preservation, sequential, random };

[[nodiscard]] std::string_view to_string(PortStrategy s) noexcept;

struct PortAnalysisConfig {
  /// Paper leeway: preservation if at least this fraction of ports survive.
  double preservation_fraction = 0.2;
  /// Paper leeway: sequential if every two subsequent connections differ by
  /// less than this.
  int sequential_max_delta = 50;
  /// Chunk detection: at least this many random-translation sessions ...
  std::size_t chunk_min_sessions = 20;
  /// ... all spanning less than this port range.
  std::uint32_t chunk_max_range = 16 * 1024;
  /// Arbitrary pooling verdict: more than this fraction of sessions saw
  /// multiple public IPs.
  double arbitrary_pooling_fraction = 0.6;
  /// Flows needed for a session to be classifiable.
  std::size_t min_flows = 5;
};

/// Classifies one session's flows; nullopt when too few flows answered.
[[nodiscard]] std::optional<PortStrategy> classify_session_ports(
    const std::vector<netalyzr::FlowObservation>& flows,
    const PortAnalysisConfig& config = {});

struct AsPortProfile {
  netcore::Asn asn = 0;
  bool cellular = false;
  std::size_t sessions = 0;  ///< classifiable sessions
  std::array<std::size_t, 3> by_strategy{};  ///< indexed by PortStrategy
  PortStrategy dominant = PortStrategy::preservation;

  bool chunk_based = false;
  std::uint32_t chunk_size_estimate = 0;

  std::size_t pooling_sessions = 0;           ///< sessions with >= 2 flows
  std::size_t multi_ip_sessions = 0;          ///< saw > 1 public IP
  bool arbitrary_pooling = false;

  [[nodiscard]] double fraction(PortStrategy s) const {
    return sessions == 0
               ? 0.0
               : static_cast<double>(
                     by_strategy[static_cast<std::size_t>(s)]) /
                     static_cast<double>(sessions);
  }
  /// True when one strategy accounts for every classified session.
  [[nodiscard]] bool pure() const {
    for (std::size_t c : by_strategy)
      if (c == sessions) return true;
    return false;
  }
};

struct PortAnalysisResult {
  /// Only ASes in `cgn_ases` are profiled (the paper studies CGN behaviour).
  std::unordered_map<netcore::Asn, AsPortProfile> per_as;

  /// Figure 8(a): source ports the server observed, split by whether the
  /// session preserved ports.
  std::vector<std::uint16_t> ports_preserved_sessions;
  std::vector<std::uint16_t> ports_translated_sessions;

  /// Figure 8(b): per UPnP-reported CPE model, (total sessions,
  /// port-preserving sessions) over *non-CGN* sessions.
  std::map<std::string, std::pair<std::size_t, std::size_t>> per_cpe_model;

  /// Table 6 helpers.
  [[nodiscard]] std::size_t count_dominant(PortStrategy s,
                                           bool cellular) const;
  [[nodiscard]] std::size_t count_chunked(bool cellular) const;
};

class PortAnalyzer {
 public:
  explicit PortAnalyzer(PortAnalysisConfig config = {}) : config_(config) {}

  [[nodiscard]] PortAnalysisResult analyze(
      const std::vector<netalyzr::SessionResult>& sessions,
      const netcore::RoutingTable& routes,
      const std::unordered_set<netcore::Asn>& cgn_ases) const;

  [[nodiscard]] const PortAnalysisConfig& config() const noexcept {
    return config_;
  }

 private:
  PortAnalysisConfig config_;
};

}  // namespace cgn::analysis
