#include "analysis/coverage.hpp"

namespace cgn::analysis {

std::string_view to_string(Population p) noexcept {
  switch (p) {
    case Population::routed: return "routed ASes";
    case Population::pbl_eyeball: return "eyeball ASes, PBL";
    case Population::apnic_eyeball: return "eyeball ASes, APNIC";
  }
  return "?";
}

CoverageResult combine_coverage(const BtDetectionResult& bt,
                                const NetalyzrDetectionResult& nz,
                                const netcore::AsRegistry& registry) {
  CoverageResult out;

  for (const auto& [asn, v] : bt.per_as) {
    CombinedVerdict& c = out.per_as[asn];
    c.bt_covered = v.covered;
    c.bt_positive = v.covered && v.cgn_positive;
  }
  for (const auto& [asn, v] : nz.per_as) {
    CombinedVerdict& c = out.per_as[asn];
    if (v.cellular) {
      c.cell_covered = v.covered;
      c.cell_positive = v.covered && v.cgn_positive;
    } else {
      c.nz_covered = v.covered;
      c.nz_positive = v.covered && v.cgn_positive;
    }
  }

  auto member = [](const netcore::AsInfo& info, Population p) {
    switch (p) {
      case Population::routed: return true;
      case Population::pbl_eyeball: return info.pbl_eyeball;
      case Population::apnic_eyeball: return info.apnic_eyeball;
    }
    return false;
  };

  for (const netcore::AsInfo& info : registry.all()) {
    auto it = out.per_as.find(info.asn);
    const CombinedVerdict* v = it == out.per_as.end() ? nullptr : &it->second;

    for (int p = 0; p < kPopulationCount; ++p) {
      auto pop = static_cast<Population>(p);
      if (!member(info, pop)) continue;
      auto idx = static_cast<std::size_t>(p);
      ++out.table5.population[idx];
      if (!v) continue;
      if (v->bt_covered) {
        ++out.table5.bittorrent[idx].covered;
        if (v->bt_positive) ++out.table5.bittorrent[idx].positive;
      }
      if (v->nz_covered) {
        ++out.table5.netalyzr_noncellular[idx].covered;
        if (v->nz_positive) ++out.table5.netalyzr_noncellular[idx].positive;
      }
      if (v->covered()) {
        ++out.table5.combined[idx].covered;
        if (v->positive()) ++out.table5.combined[idx].positive;
      }
      if (v->cell_covered) {
        ++out.table5.netalyzr_cellular[idx].covered;
        if (v->cell_positive) ++out.table5.netalyzr_cellular[idx].positive;
      }
    }

    // Figure 6 region rollups (PBL eyeball list, as in the paper's plot).
    auto region = static_cast<std::size_t>(info.region);
    if (info.pbl_eyeball && !info.cellular) {
      ++out.regions.eyeball_total[region];
      if (v && v->covered()) {
        ++out.regions.eyeball_covered[region];
        if (v->positive()) ++out.regions.eyeball_positive[region];
      }
    }
    if (info.cellular && v && v->cell_covered) {
      ++out.regions.cellular_covered[region];
      if (v->cell_positive) ++out.regions.cellular_positive[region];
    }
  }

  return out;
}

void note_supervision(CoverageResult& result,
                      const super::CampaignReport* bt_report,
                      const super::CampaignReport* nz_report) {
  if (bt_report != nullptr) {
    result.measurement.bt_shards_planned = bt_report->planned();
    result.measurement.bt_shards_completed = bt_report->finished();
  }
  if (nz_report != nullptr) {
    result.measurement.nz_shards_planned = nz_report->planned();
    result.measurement.nz_shards_completed = nz_report->finished();
  }
}

}  // namespace cgn::analysis
