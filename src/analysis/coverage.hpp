// Network-wide coverage and penetration rollups (paper §5: Table 5 and
// Figure 6), combining both detection methods over the three AS populations
// (all routed ASes, PBL eyeballs, APNIC eyeballs) and the five RIR regions.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "analysis/bt_detector.hpp"
#include "analysis/netalyzr_detector.hpp"
#include "netcore/as_registry.hpp"
#include "super/supervisor.hpp"

namespace cgn::analysis {

/// Per-AS combined verdict across both methods.
struct CombinedVerdict {
  bool bt_covered = false;
  bool bt_positive = false;
  bool nz_covered = false;  ///< Netalyzr non-cellular
  bool nz_positive = false;
  bool cell_covered = false;  ///< Netalyzr cellular
  bool cell_positive = false;

  [[nodiscard]] bool covered() const { return bt_covered || nz_covered; }
  [[nodiscard]] bool positive() const { return bt_positive || nz_positive; }
};

/// The three AS populations of Table 5.
enum class Population : std::uint8_t { routed, pbl_eyeball, apnic_eyeball };
inline constexpr int kPopulationCount = 3;

[[nodiscard]] std::string_view to_string(Population p) noexcept;

struct CoverageCell {
  std::size_t covered = 0;
  std::size_t positive = 0;
};

struct Table5 {
  std::array<std::size_t, kPopulationCount> population{};
  std::array<CoverageCell, kPopulationCount> bittorrent{};
  std::array<CoverageCell, kPopulationCount> netalyzr_noncellular{};
  std::array<CoverageCell, kPopulationCount> combined{};
  std::array<CoverageCell, kPopulationCount> netalyzr_cellular{};
};

/// Figure 6 panels, per RIR.
struct RegionRollup {
  std::array<std::size_t, netcore::kRirCount> eyeball_total{};
  std::array<std::size_t, netcore::kRirCount> eyeball_covered{};
  std::array<std::size_t, netcore::kRirCount> eyeball_positive{};
  std::array<std::size_t, netcore::kRirCount> cellular_covered{};
  std::array<std::size_t, netcore::kRirCount> cellular_positive{};
};

/// How much of each supervised campaign's *measurement plan* actually ran.
/// Quarantined or deadline-aborted shards degrade these fractions below
/// 1.0 — the paper's coverage tables are then lower bounds, and analyses
/// should report them next to the Table 5 numbers instead of presenting a
/// partial campaign as a complete one.
struct MeasurementCoverage {
  std::size_t bt_shards_planned = 0;  ///< ping-sweep shards (BT method)
  std::size_t bt_shards_completed = 0;
  std::size_t nz_shards_planned = 0;  ///< per-ISP Netalyzr shards
  std::size_t nz_shards_completed = 0;

  [[nodiscard]] double bt_fraction() const noexcept {
    return bt_shards_planned == 0
               ? 1.0
               : static_cast<double>(bt_shards_completed) /
                     static_cast<double>(bt_shards_planned);
  }
  [[nodiscard]] double nz_fraction() const noexcept {
    return nz_shards_planned == 0
               ? 1.0
               : static_cast<double>(nz_shards_completed) /
                     static_cast<double>(nz_shards_planned);
  }
  /// True when either campaign lost shards to quarantine/deadlines.
  [[nodiscard]] bool degraded() const noexcept {
    return bt_shards_completed < bt_shards_planned ||
           nz_shards_completed < nz_shards_planned;
  }
};

struct CoverageResult {
  std::unordered_map<netcore::Asn, CombinedVerdict> per_as;
  Table5 table5;
  RegionRollup regions;
  MeasurementCoverage measurement;

  /// Every CGN-positive AS across all methods (input to the §6 deep dives).
  [[nodiscard]] std::unordered_set<netcore::Asn> cgn_positive_ases() const {
    std::unordered_set<netcore::Asn> out;
    for (const auto& [asn, v] : per_as)
      if (v.positive() || v.cell_positive) out.insert(asn);
    return out;
  }
};

/// Combines both detectors' verdicts against the AS registry.
[[nodiscard]] CoverageResult combine_coverage(
    const BtDetectionResult& bt, const NetalyzrDetectionResult& nz,
    const netcore::AsRegistry& registry);

/// Folds the supervised campaigns' shard reports into
/// `result.measurement`. Either report may be null (campaign ran
/// unsupervised or was skipped) — its planned/completed counts then stay
/// zero and the corresponding fraction reads 1.0.
void note_supervision(CoverageResult& result,
                      const super::CampaignReport* bt_report,
                      const super::CampaignReport* nz_report);

}  // namespace cgn::analysis
