// Network-wide coverage and penetration rollups (paper §5: Table 5 and
// Figure 6), combining both detection methods over the three AS populations
// (all routed ASes, PBL eyeballs, APNIC eyeballs) and the five RIR regions.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "analysis/bt_detector.hpp"
#include "analysis/netalyzr_detector.hpp"
#include "netcore/as_registry.hpp"

namespace cgn::analysis {

/// Per-AS combined verdict across both methods.
struct CombinedVerdict {
  bool bt_covered = false;
  bool bt_positive = false;
  bool nz_covered = false;  ///< Netalyzr non-cellular
  bool nz_positive = false;
  bool cell_covered = false;  ///< Netalyzr cellular
  bool cell_positive = false;

  [[nodiscard]] bool covered() const { return bt_covered || nz_covered; }
  [[nodiscard]] bool positive() const { return bt_positive || nz_positive; }
};

/// The three AS populations of Table 5.
enum class Population : std::uint8_t { routed, pbl_eyeball, apnic_eyeball };
inline constexpr int kPopulationCount = 3;

[[nodiscard]] std::string_view to_string(Population p) noexcept;

struct CoverageCell {
  std::size_t covered = 0;
  std::size_t positive = 0;
};

struct Table5 {
  std::array<std::size_t, kPopulationCount> population{};
  std::array<CoverageCell, kPopulationCount> bittorrent{};
  std::array<CoverageCell, kPopulationCount> netalyzr_noncellular{};
  std::array<CoverageCell, kPopulationCount> combined{};
  std::array<CoverageCell, kPopulationCount> netalyzr_cellular{};
};

/// Figure 6 panels, per RIR.
struct RegionRollup {
  std::array<std::size_t, netcore::kRirCount> eyeball_total{};
  std::array<std::size_t, netcore::kRirCount> eyeball_covered{};
  std::array<std::size_t, netcore::kRirCount> eyeball_positive{};
  std::array<std::size_t, netcore::kRirCount> cellular_covered{};
  std::array<std::size_t, netcore::kRirCount> cellular_positive{};
};

struct CoverageResult {
  std::unordered_map<netcore::Asn, CombinedVerdict> per_as;
  Table5 table5;
  RegionRollup regions;

  /// Every CGN-positive AS across all methods (input to the §6 deep dives).
  [[nodiscard]] std::unordered_set<netcore::Asn> cgn_positive_ases() const {
    std::unordered_set<netcore::Asn> out;
    for (const auto& [asn, v] : per_as)
      if (v.positive() || v.cell_positive) out.insert(asn);
    return out;
  }
};

/// Combines both detectors' verdicts against the AS registry.
[[nodiscard]] CoverageResult combine_coverage(
    const BtDetectionResult& bt, const NetalyzrDetectionResult& nz,
    const netcore::AsRegistry& registry);

}  // namespace cgn::analysis
