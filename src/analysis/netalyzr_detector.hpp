// Netalyzr-based CGN detection (paper §4.2) and the address-layering
// statistics of Table 4, Figure 5 and Figure 7.
//
// Cellular sessions expose the CGN directly: the ISP assigns IPdev, so a
// non-"routed match" classification implies translation. Non-cellular
// sessions sit behind CPE NATs, so the detector (i) discards IPcpe values
// falling in the top /24 blocks CPEs assign from, and (ii) requires per-AS
// internal-address diversity (unique /24s >= 0.4 x candidate sessions) —
// both heuristics straight from the paper.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/address_classify.hpp"
#include "netalyzr/session.hpp"
#include "netcore/ipv4.hpp"
#include "netcore/routing_table.hpp"

namespace cgn::analysis {

struct NetalyzrDetectorConfig {
  /// Minimum sessions for a cellular AS to be covered.
  std::size_t min_cellular_sessions = 5;
  /// Minimum sessions for a non-cellular AS to be covered.
  std::size_t min_noncellular_sessions = 10;
  /// Minimum CGN-candidate sessions (N) before the diversity rule applies.
  std::size_t min_candidate_sessions = 10;
  /// Required unique IPcpe /24s as a fraction of N (Figure 5's dashed line).
  double slash24_diversity_factor = 0.4;
  /// Number of top CPE-assignment /24 blocks to filter out.
  std::size_t top_cpe_blocks = 10;
};

/// Rows of Table 4: the four reserved ranges plus the three public classes.
enum class Table4Row : std::uint8_t {
  r192, r172, r10, r100, unrouted, routed_match, routed_mismatch,
};
inline constexpr int kTable4Rows = 7;

[[nodiscard]] std::string_view to_string(Table4Row r) noexcept;

/// Classifies one address into a Table 4 row.
[[nodiscard]] Table4Row table4_row(netcore::Ipv4Address local,
                                   std::optional<netcore::Ipv4Address> pub,
                                   const netcore::RoutingTable& routes);

struct Table4Column {
  std::uint64_t n = 0;
  std::array<std::uint64_t, kTable4Rows> rows{};
  [[nodiscard]] double fraction(Table4Row r) const {
    return n == 0 ? 0.0
                  : static_cast<double>(rows[static_cast<std::size_t>(r)]) /
                        static_cast<double>(n);
  }
};

struct Table4 {
  Table4Column cellular_dev;    ///< IPdev of cellular sessions
  Table4Column noncellular_dev; ///< IPdev of non-cellular sessions
  Table4Column noncellular_cpe; ///< IPcpe (where UPnP answered)
};

/// How a cellular AS assigns device addresses.
enum class CellularAssignment : std::uint8_t {
  internal_only, public_only, mixed,
};

/// Per-(AS, reserved range) point of Figure 5.
struct Fig5Point {
  std::size_t candidate_sessions = 0;  ///< sessions with IPcpe != IPpub
  std::size_t unique_slash24 = 0;      ///< unique /24s of IPcpe
};

struct AsNetalyzrVerdict {
  netcore::Asn asn = 0;
  bool cellular = false;
  std::size_t sessions = 0;
  bool covered = false;
  bool cgn_positive = false;

  // Cellular only:
  CellularAssignment assignment = CellularAssignment::public_only;

  // Non-cellular only:
  std::size_t candidate_sessions = 0;
  std::size_t unique_cpe_slash24 = 0;
  std::array<Fig5Point, netcore::kReservedRangeCount> fig5{};

  // Internal address-space usage of the detected CGN (Figure 7):
  std::unordered_set<netcore::ReservedRange> internal_ranges;
  bool uses_routable_internal = false;
  /// /8 blocks of routable space used internally (Figure 7(b)).
  std::unordered_set<std::uint8_t> routable_internal_slash8;
};

struct NetalyzrDetectionResult {
  Table4 table4;
  /// The CPE-assignment /24 blocks filtered out (95% of assignments in the
  /// paper).
  std::vector<netcore::Ipv4Prefix> cpe_blocks;
  std::unordered_map<netcore::Asn, AsNetalyzrVerdict> per_as;

  [[nodiscard]] std::size_t covered(bool cellular) const;
  [[nodiscard]] std::size_t cgn_positive(bool cellular) const;
};

class NetalyzrDetector {
 public:
  explicit NetalyzrDetector(NetalyzrDetectorConfig config = {})
      : config_(config) {}

  /// `asn_of_session` is taken from each session's server-observed public
  /// address (the measurement view), falling back to the stamped ASN when
  /// the echo test failed.
  [[nodiscard]] NetalyzrDetectionResult analyze(
      const std::vector<netalyzr::SessionResult>& sessions,
      const netcore::RoutingTable& routes) const;

  [[nodiscard]] const NetalyzrDetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  NetalyzrDetectorConfig config_;
};

}  // namespace cgn::analysis
