// Table 4's address taxonomy: private / unrouted / routed match /
// routed mismatch, judged against the global routing table.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "netcore/ipv4.hpp"
#include "netcore/routing_table.hpp"

namespace cgn::analysis {

enum class AddressClass : std::uint8_t {
  private_range,    ///< one of the Table 1 reserved blocks
  unrouted,         ///< nominally public but absent from the routing table
  routed_match,     ///< routed and equal to the public address (no NAT)
  routed_mismatch,  ///< routed but different from the public address
};

[[nodiscard]] inline std::string_view to_string(AddressClass c) noexcept {
  switch (c) {
    case AddressClass::private_range: return "private";
    case AddressClass::unrouted: return "unrouted";
    case AddressClass::routed_match: return "routed match";
    case AddressClass::routed_mismatch: return "routed mismatch";
  }
  return "?";
}

/// Classifies a locally observed address against the server-observed public
/// address, per §4.2.
[[nodiscard]] inline AddressClass classify_address(
    netcore::Ipv4Address local, std::optional<netcore::Ipv4Address> public_ip,
    const netcore::RoutingTable& routes) {
  if (netcore::is_reserved(local)) return AddressClass::private_range;
  if (!routes.is_routed(local)) return AddressClass::unrouted;
  if (public_ip && local == *public_ip) return AddressClass::routed_match;
  return AddressClass::routed_mismatch;
}

/// True when the classification implies address translation on the path.
[[nodiscard]] inline bool implies_translation(AddressClass c) noexcept {
  return c != AddressClass::routed_match;
}

}  // namespace cgn::analysis
