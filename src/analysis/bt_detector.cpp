#include "analysis/bt_detector.hpp"

#include <algorithm>

#include "analysis/union_find.hpp"

namespace cgn::analysis {

namespace {

int range_index(netcore::ReservedRange r) {
  return static_cast<int>(r) - 1;  // r != none
}

}  // namespace

BtDetectionResult BtDetector::analyze(
    const crawler::CrawlDataset& data,
    const netcore::RoutingTable& routes) const {
  BtDetectionResult out;

  // --- Table 2: crawl summary -------------------------------------------
  out.summary.queried_peers = data.queried_peers();
  out.summary.queried_unique_ips = data.queried_unique_ips();
  out.summary.learned_peers = data.learned_peers();
  out.summary.learned_unique_ips = data.learned_unique_ips();
  out.summary.responding_peers = data.responding_peers();
  out.summary.responding_unique_ips = data.responding_unique_ips();

  std::unordered_set<netcore::Asn> queried_ases;
  std::unordered_map<netcore::Asn, std::size_t> queried_per_as;
  for (const dht::Contact& c : data.queried_contacts()) {
    if (auto asn = routes.origin_of(c.endpoint.address)) {
      queried_ases.insert(*asn);
      ++queried_per_as[*asn];
    }
  }
  out.summary.queried_ases = queried_ases.size();

  std::unordered_set<netcore::Asn> learned_ases;
  for (const dht::Contact& c : data.learned_contacts())
    if (auto asn = routes.origin_of(c.endpoint.address))
      learned_ases.insert(*asn);
  out.summary.learned_ases = learned_ases.size();

  // --- Table 3: per-range leak statistics (raw, pre-filter) --------------
  struct RangeAgg {
    std::unordered_set<crawler::PeerKey, crawler::PeerKeyHash> internal_peers;
    std::unordered_set<netcore::Ipv4Address> internal_ips;
    std::unordered_set<crawler::PeerKey, crawler::PeerKeyHash> leaking_peers;
    std::unordered_set<netcore::Ipv4Address> leaking_ips;
    std::unordered_set<netcore::Asn> leaking_ases;
  };
  std::array<RangeAgg, netcore::kReservedRangeCount> agg;

  // Internal peer -> set of leaker ASes (for the VPN-exclusivity filter).
  std::unordered_map<crawler::PeerKey, std::unordered_set<netcore::Asn>,
                     crawler::PeerKeyHash>
      leaker_ases_of;

  for (const crawler::LeakEdge& e : data.leaks()) {
    auto range = netcore::classify_reserved(e.internal.endpoint.address);
    if (range == netcore::ReservedRange::none) continue;
    auto asn = routes.origin_of(e.leaker.endpoint.address);
    RangeAgg& a = agg[static_cast<std::size_t>(range_index(range))];
    a.internal_peers.insert(crawler::PeerKey{e.internal});
    a.internal_ips.insert(e.internal.endpoint.address);
    a.leaking_peers.insert(crawler::PeerKey{e.leaker});
    a.leaking_ips.insert(e.leaker.endpoint.address);
    if (asn) {
      a.leaking_ases.insert(*asn);
      leaker_ases_of[crawler::PeerKey{e.internal}].insert(*asn);
    }
  }
  for (int r = 0; r < netcore::kReservedRangeCount; ++r) {
    const RangeAgg& a = agg[static_cast<std::size_t>(r)];
    RangeLeakStats& row = out.per_range[static_cast<std::size_t>(r)];
    row.internal_total = a.internal_peers.size();
    row.internal_unique_ips = a.internal_ips.size();
    row.leaking_total = a.leaking_peers.size();
    row.leaking_unique_ips = a.leaking_ips.size();
    row.leaking_ases = a.leaking_ases.size();
  }

  // --- Per-(AS, range) leakage graphs and clustering ----------------------
  // Vertices are *peers* — full (endpoint, nodeid) tuples, as in the paper —
  // so two different homes that both use 192.168.0.2 do not merge. Cluster
  // sizes are then measured in unique IPs per side. Internal peers leaked
  // from multiple ASes are excluded as likely VPN artifacts.
  struct Graph {
    std::unordered_map<crawler::PeerKey, std::size_t, crawler::PeerKeyHash>
        vertex_of_public;
    std::unordered_map<crawler::PeerKey, std::size_t, crawler::PeerKeyHash>
        vertex_of_internal;
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    std::size_t vertices = 0;
    std::size_t intern(
        std::unordered_map<crawler::PeerKey, std::size_t,
                           crawler::PeerKeyHash>& m,
        const crawler::PeerKey& k) {
      auto [it, inserted] = m.try_emplace(k, vertices);
      if (inserted) ++vertices;
      return it->second;
    }
  };
  std::unordered_map<std::uint64_t, Graph> graphs;  // key: asn*8 + range

  for (const crawler::LeakEdge& e : data.leaks()) {
    auto range = netcore::classify_reserved(e.internal.endpoint.address);
    if (range == netcore::ReservedRange::none) continue;
    auto asn = routes.origin_of(e.leaker.endpoint.address);
    if (!asn) continue;
    auto exclusive_it = leaker_ases_of.find(crawler::PeerKey{e.internal});
    if (exclusive_it == leaker_ases_of.end() ||
        exclusive_it->second.size() != 1)
      continue;  // leaked from multiple ASes: likely a VPN artifact
    std::uint64_t key = std::uint64_t{*asn} * 8 +
                        static_cast<std::uint64_t>(range_index(range));
    Graph& g = graphs[key];
    std::size_t u = g.intern(g.vertex_of_public, crawler::PeerKey{e.leaker});
    std::size_t v =
        g.intern(g.vertex_of_internal, crawler::PeerKey{e.internal});
    g.edges.emplace_back(u, v);
  }

  // Seed per-AS verdicts with coverage from queried-peer counts.
  for (const auto& [asn, count] : queried_per_as) {
    AsBtVerdict& v = out.per_as[asn];
    v.asn = asn;
    v.queried_peers = count;
    v.covered = count >= config_.min_queried_peers;
  }

  for (auto& [key, g] : graphs) {
    auto asn = static_cast<netcore::Asn>(key / 8);
    int r = static_cast<int>(key % 8);

    UnionFind uf(g.vertices);
    for (auto [u, v] : g.edges) uf.unite(u, v);

    // Count *unique IPs* per component side (Figure 4's axes).
    struct ComponentIps {
      std::unordered_set<netcore::Ipv4Address> public_ips;
      std::unordered_set<netcore::Ipv4Address> internal_ips;
    };
    std::unordered_map<std::size_t, ComponentIps> components;
    for (const auto& [peer, idx] : g.vertex_of_public)
      components[uf.find(idx)].public_ips.insert(
          peer.contact.endpoint.address);
    for (const auto& [peer, idx] : g.vertex_of_internal)
      components[uf.find(idx)].internal_ips.insert(
          peer.contact.endpoint.address);

    ClusterSize largest;
    for (const auto& [root, ips] : components) {
      // "Largest" by total unique-IP count, as a cluster spans both sides.
      if (ips.public_ips.size() + ips.internal_ips.size() >
          largest.public_ips + largest.internal_ips)
        largest = ClusterSize{ips.public_ips.size(), ips.internal_ips.size()};
    }

    AsBtVerdict& v = out.per_as[asn];
    v.asn = asn;
    v.largest[static_cast<std::size_t>(r)] = largest;
    if (largest.public_ips >= config_.min_cluster_public_ips &&
        largest.internal_ips >= config_.min_cluster_internal_ips) {
      if (!v.cgn_positive) v.cgn_positive = true;
      v.detected_ranges.push_back(
          static_cast<netcore::ReservedRange>(r + 1));
    }
  }

  // Detection requires coverage; drop positives in under-covered ASes.
  for (auto& [asn, v] : out.per_as)
    if (!v.covered) v.cgn_positive = false;

  return out;
}

}  // namespace cgn::analysis
