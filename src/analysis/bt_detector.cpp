#include "analysis/bt_detector.hpp"

#include "analysis/stream.hpp"

namespace cgn::analysis {

// Batch analysis is a replay of the finished dataset through the streaming
// engine (see stream.hpp): one code path means the observatory's live
// figures and the batch pipeline's cannot drift apart, and the streaming
// engine's order-independence makes the replay order irrelevant.
BtDetectionResult BtDetector::analyze(
    const crawler::CrawlDataset& data,
    const netcore::RoutingTable& routes) const {
  StreamingBtAnalyzer stream(routes, config_);
  for (const dht::Contact& c : data.queried_contacts())
    stream.note_queried(c);
  for (const dht::Contact& c : data.learned_contacts())
    stream.note_learned(c);
  for (const dht::Contact& c : data.responding_contacts())
    stream.note_ping_response(c);
  for (const crawler::LeakEdge& e : data.leaks())
    stream.note_leak(e.leaker, e.internal);
  return stream.snapshot();
}

}  // namespace cgn::analysis
