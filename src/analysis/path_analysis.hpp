// TTL-enumeration and STUN rollups (paper §6.3-§6.5: Table 7, Figures
// 11-13).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/stats.hpp"
#include "netalyzr/session.hpp"
#include "netcore/routing_table.hpp"
#include "stun/stun.hpp"

namespace cgn::analysis {

/// The three vantage-point classes the deep-dive figures group by.
enum class VantageClass : std::uint8_t {
  noncellular_no_cgn,
  noncellular_cgn,
  cellular_cgn,
};

[[nodiscard]] std::string_view to_string(VantageClass c) noexcept;

struct PathAnalysisConfig {
  /// A CGN timeout sample requires the NAT at least this many hops out, so
  /// NAT444 sessions report the carrier NAT rather than the CPE.
  int cgn_min_hop = 3;
  /// Sessions per (AS, class) required before results count (paper: 3).
  std::size_t min_sessions_per_as = 3;
};

/// Table 7: sessions cross-classified by whether the enumeration found an
/// expired mapping vs whether the addresses already betrayed a NAT.
struct Table7 {
  std::uint64_t mismatch_detected = 0;
  std::uint64_t mismatch_undetected = 0;
  std::uint64_t match_detected = 0;  ///< stateful box without translation
  std::uint64_t match_undetected = 0;
  [[nodiscard]] std::uint64_t total() const {
    return mismatch_detected + mismatch_undetected + match_detected +
           match_undetected;
  }
};

/// Figure 11: distribution of the most distant NAT, per AS, per class.
struct NatDistanceDistribution {
  /// index 0 = hop 1, ..., index 9 = hop >= 10.
  std::array<std::size_t, 10> ases_by_hop{};
  std::size_t total_ases = 0;
};

/// Figure 12 inputs.
struct TimeoutSummary {
  std::vector<double> cellular_cgn_per_as;     ///< per-AS modal timeout
  std::vector<double> noncellular_cgn_per_as;  ///< per-AS modal timeout
  std::vector<double> cpe_per_session;         ///< per-session CPE timeout
};

struct PathAnalysisResult {
  Table7 table7;
  std::size_t enum_sessions_used = 0;
  std::size_t enum_ases = 0;
  std::size_t enum_cgn_ases = 0;
  std::map<VantageClass, NatDistanceDistribution> fig11;
  TimeoutSummary fig12;
};

class PathAnalyzer {
 public:
  explicit PathAnalyzer(PathAnalysisConfig config = {}) : config_(config) {}

  [[nodiscard]] PathAnalysisResult analyze(
      const std::vector<netalyzr::SessionResult>& sessions,
      const netcore::RoutingTable& routes,
      const std::unordered_set<netcore::Asn>& cgn_ases) const;

 private:
  PathAnalysisConfig config_;
};

/// Figure 13 rollups.
struct StunAnalysisResult {
  /// (a) per-session STUN types of CPE NATs (non-cellular, non-CGN ASes).
  std::map<stun::StunType, std::size_t> cpe_sessions;
  /// (b) most permissive type per CGN AS, split by network type.
  std::map<stun::StunType, std::size_t> cellular_cgn_ases;
  std::map<stun::StunType, std::size_t> noncellular_cgn_ases;
  std::size_t sessions_used = 0;
  std::size_t ases = 0;
  std::size_t cgn_ases = 0;
};

class StunAnalyzer {
 public:
  explicit StunAnalyzer(PathAnalysisConfig config = {}) : config_(config) {}

  [[nodiscard]] StunAnalysisResult analyze(
      const std::vector<netalyzr::SessionResult>& sessions,
      const netcore::RoutingTable& routes,
      const std::unordered_set<netcore::Asn>& cgn_ases) const;

 private:
  PathAnalysisConfig config_;
};

}  // namespace cgn::analysis
