// Streaming (incremental) variants of the §4 detectors, for the
// cgn::observatory long-running analysis engine.
//
// The batch detectors rebuild their whole state from a finished campaign;
// these engines ingest one event at a time and can produce a full
// BtDetectionResult / NetalyzrDetectionResult snapshot after every event.
// Both are *order-independent*: their state is made of sets, additive
// tallies and union-find connectivity — all pure functions of the event
// multiset — and every ranked choice (largest cluster, top CPE blocks)
// uses a deterministic total order (see better_cluster and the CPE-block
// sort). That is why a replayed, resharded or checkpoint-resumed stream
// converges on figures byte-identical to the batch pipeline's, at any
// worker count. The batch detectors delegate here, so the two paths cannot
// drift apart.
//
// The one genuinely online-hard part is the §4.1 VPN-exclusivity filter:
// batch analysis drops internal peers leaked from more than one AS, a fact
// only known at the end. The streaming analyzer adds edges eagerly and
// *retracts* a peer's edges when a second leaker AS shows up, rebuilding
// just the affected (AS, range) graph from its retained edge list — small,
// because graphs are per-AS — so the post-filter edge set always matches
// what batch analysis would have kept.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/bt_detector.hpp"
#include "analysis/netalyzr_detector.hpp"
#include "analysis/union_find.hpp"
#include "crawler/crawl_dataset.hpp"
#include "netalyzr/session.hpp"
#include "netcore/ipv4.hpp"
#include "netcore/routing_table.hpp"

namespace cgn::analysis {

/// Incremental §4.1 detector: feed crawl events one at a time, snapshot a
/// full BtDetectionResult at any point.
class StreamingBtAnalyzer {
 public:
  explicit StreamingBtAnalyzer(const netcore::RoutingTable& routes,
                               BtDetectorConfig config = {})
      : routes_(routes), config_(config) {}

  void note_queried(const dht::Contact& c);
  void note_learned(const dht::Contact& c);
  void note_ping_response(const dht::Contact& c);
  void note_leak(const dht::Contact& leaker, const dht::Contact& internal);

  [[nodiscard]] std::uint64_t events_ingested() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t leaks_ingested() const noexcept {
    return leaks_;
  }

  /// The full §4.1 result over everything ingested so far.
  [[nodiscard]] BtDetectionResult snapshot() const;

  [[nodiscard]] const BtDetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  /// One per-(AS, range) leakage graph maintained online. Vertices are
  /// interned per peer key; each union-find root carries its component's
  /// unique-IP sets, merged small-into-large, and `largest` tracks the
  /// running maximum under better_cluster (components only grow, so the
  /// maximum over merge-time candidates equals the batch scan over final
  /// components).
  struct OnlineLeakGraph {
    std::vector<crawler::LeakEdge> edges;  ///< retained for retraction
    std::unordered_map<crawler::PeerKey, std::size_t, crawler::PeerKeyHash>
        vertex_of_public;
    std::unordered_map<crawler::PeerKey, std::size_t, crawler::PeerKeyHash>
        vertex_of_internal;
    DynamicUnionFind uf;
    struct Tally {
      std::unordered_set<netcore::Ipv4Address> public_ips;
      std::unordered_set<netcore::Ipv4Address> internal_ips;
    };
    std::unordered_map<std::size_t, Tally> tally_of_root;
    ClusterSize largest;

    void add_edge(const dht::Contact& leaker, const dht::Contact& internal);
    /// Drops every edge reported for `internal` and rebuilds the graph
    /// from the survivors (the VPN-exclusivity retraction).
    void retract_internal(const crawler::PeerKey& internal);

   private:
    void link(const dht::Contact& leaker, const dht::Contact& internal);
    std::size_t intern(
        std::unordered_map<crawler::PeerKey, std::size_t,
                           crawler::PeerKeyHash>& m,
        const crawler::PeerKey& k, bool is_public);
  };

  /// Raw per-range tallies of Table 3 (pre-filter, like the batch pass).
  struct RangeAgg {
    std::unordered_set<crawler::PeerKey, crawler::PeerKeyHash> internal_peers;
    std::unordered_set<netcore::Ipv4Address> internal_ips;
    std::unordered_set<crawler::PeerKey, crawler::PeerKeyHash> leaking_peers;
    std::unordered_set<netcore::Ipv4Address> leaking_ips;
    std::unordered_set<netcore::Asn> leaking_ases;
  };

  const netcore::RoutingTable& routes_;
  BtDetectorConfig config_;
  std::uint64_t events_ = 0;
  std::uint64_t leaks_ = 0;

  // Table 2 state.
  std::unordered_set<crawler::PeerKey, crawler::PeerKeyHash> queried_;
  std::unordered_set<crawler::PeerKey, crawler::PeerKeyHash> learned_;
  std::unordered_set<crawler::PeerKey, crawler::PeerKeyHash> responders_;
  std::unordered_set<netcore::Ipv4Address> queried_ips_;
  std::unordered_set<netcore::Ipv4Address> learned_ips_;
  std::unordered_set<netcore::Ipv4Address> responder_ips_;
  std::unordered_set<netcore::Asn> learned_ases_;
  std::unordered_map<netcore::Asn, std::size_t> queried_per_as_;

  // Table 3 + graph state.
  std::array<RangeAgg, netcore::kReservedRangeCount> agg_;
  std::unordered_map<crawler::PeerKey, std::unordered_set<netcore::Asn>,
                     crawler::PeerKeyHash>
      leaker_ases_of_;
  std::unordered_map<std::uint64_t, OnlineLeakGraph> graphs_;  ///< asn*8+range
};

/// Incremental §4.2 classifier: feed Netalyzr sessions one at a time,
/// snapshot a full NetalyzrDetectionResult at any point. Per-AS state keeps
/// only the three addresses the detector reads, not whole SessionResults.
class StreamingNetalyzrClassifier {
 public:
  explicit StreamingNetalyzrClassifier(const netcore::RoutingTable& routes,
                                       NetalyzrDetectorConfig config = {})
      : routes_(routes), config_(config) {}

  void ingest(const netalyzr::SessionResult& s);

  [[nodiscard]] std::uint64_t sessions_ingested() const noexcept {
    return sessions_;
  }

  /// The full §4.2 result over everything ingested so far.
  [[nodiscard]] NetalyzrDetectionResult snapshot() const;

  [[nodiscard]] const NetalyzrDetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  struct CompactSession {
    netcore::Ipv4Address ip_dev;
    std::optional<netcore::Ipv4Address> ip_cpe;
    std::optional<netcore::Ipv4Address> ip_pub;
  };
  struct AsAgg {
    bool cellular = false;
    std::vector<CompactSession> sessions;
  };

  const netcore::RoutingTable& routes_;
  NetalyzrDetectorConfig config_;
  std::uint64_t sessions_ = 0;
  Table4 table4_;
  std::unordered_map<netcore::Ipv4Prefix, std::size_t> dev_block_count_;
  std::unordered_map<netcore::Asn, AsAgg> groups_;
};

}  // namespace cgn::analysis
