#include "analysis/figures.hpp"

#include <ostream>
#include <string>

#include "analysis/stats.hpp"
#include "obs/metrics.hpp"

namespace cgn::analysis {

Figures fig04_figures(const BtDetectionResult& bt) {
  std::size_t cluster_ases = 0, detectable = 0;
  for (const auto& [asn, v] : bt.per_as) {
    bool any = false, beyond5 = false;
    for (const auto& c : v.largest) {
      any = any || c.public_ips > 0 || c.internal_ips > 0;
      beyond5 = beyond5 || (c.public_ips >= 5 && c.internal_ips >= 5);
    }
    cluster_ases += any ? 1 : 0;
    detectable += beyond5 ? 1 : 0;
  }
  return {{"ases_with_clusters", static_cast<double>(cluster_ases)},
          {"ases_beyond_5x5", static_cast<double>(detectable)}};
}

Figures fig05_figures(const NetalyzrDetectionResult& nz) {
  std::size_t covered = 0, positive = 0;
  for (const auto& [asn, v] : nz.per_as) {
    if (v.cellular || !v.covered) continue;
    ++covered;
    if (v.cgn_positive) ++positive;
  }
  return {{"noncellular_ases_covered", static_cast<double>(covered)},
          {"cgn_positive", static_cast<double>(positive)}};
}

Figures tab05_figures(const CoverageResult& cov) {
  const Table5& t = cov.table5;
  return {
      {"routed_population", static_cast<double>(t.population[0])},
      {"pbl_population", static_cast<double>(t.population[1])},
      {"pbl_combined_covered", static_cast<double>(t.combined[1].covered)},
      {"pbl_combined_positive", static_cast<double>(t.combined[1].positive)},
      {"cellular_covered",
       static_cast<double>(t.netalyzr_cellular[0].covered)},
      {"cellular_positive",
       static_cast<double>(t.netalyzr_cellular[0].positive)}};
}

Figures fig14_figures(const TransitionDetectionResult& tr) {
  Figures f{{"observed_sessions", static_cast<double>(tr.observed_sessions)},
            {"scored_ases", static_cast<double>(tr.scored_ases)}};
  for (int i = 0; i < kTransitionVerdicts; ++i) {
    const auto v = static_cast<TransitionVerdict>(i);
    const MechanismScore& m = tr.of(v);
    const std::string name(to_string(v));
    f.emplace_back("detect_acc_" + name, m.accuracy());
    f.emplace_back("truth_sessions_" + name,
                   static_cast<double>(m.truth_sessions));
    f.emplace_back("median_timeout_s_" + name,
                   m.timeouts_s.empty() ? 0.0
                                        : quantile(m.timeouts_s, 0.5));
  }
  return f;
}

void render_figures_json(std::ostream& os, const Figures& figures) {
  const auto saved = os.precision(12);
  os << '{';
  bool first = true;
  for (const auto& [key, value] : figures) {
    if (!first) os << ',';
    first = false;
    obs::json_escape(os, key);
    os << ':' << value;
  }
  os << '}';
  os.precision(saved);
}

}  // namespace cgn::analysis
