#include "analysis/path_analysis.hpp"

#include <algorithm>

namespace cgn::analysis {

std::string_view to_string(VantageClass c) noexcept {
  switch (c) {
    case VantageClass::noncellular_no_cgn: return "non-cellular no CGN";
    case VantageClass::noncellular_cgn: return "non-cellular CGN";
    case VantageClass::cellular_cgn: return "cellular CGN";
  }
  return "?";
}

namespace {

netcore::Asn session_asn(const netalyzr::SessionResult& s,
                         const netcore::RoutingTable& routes) {
  if (s.ip_pub) {
    if (auto asn = routes.origin_of(*s.ip_pub)) return *asn;
  }
  return s.asn;
}

std::optional<VantageClass> classify_vantage(
    const netalyzr::SessionResult& s, netcore::Asn asn,
    const std::unordered_set<netcore::Asn>& cgn_ases) {
  const bool cgn = cgn_ases.contains(asn);
  if (s.cellular) {
    if (cgn) return VantageClass::cellular_cgn;
    return std::nullopt;  // cellular non-CGN is too rare a class to report
  }
  return cgn ? VantageClass::noncellular_cgn
             : VantageClass::noncellular_no_cgn;
}

}  // namespace

PathAnalysisResult PathAnalyzer::analyze(
    const std::vector<netalyzr::SessionResult>& sessions,
    const netcore::RoutingTable& routes,
    const std::unordered_set<netcore::Asn>& cgn_ases) const {
  PathAnalysisResult out;

  struct AsAgg {
    VantageClass vclass = VantageClass::noncellular_no_cgn;
    std::vector<int> most_distant;        // per session
    std::vector<double> cgn_timeouts;     // per session (hop >= cgn_min_hop)
  };
  std::unordered_map<netcore::Asn, AsAgg> per_as;
  std::unordered_set<netcore::Asn> seen_cgn;

  for (const auto& s : sessions) {
    if (!s.enumeration) continue;
    const auto& e = *s.enumeration;
    const netcore::Asn asn = session_asn(s, routes);
    auto vclass = classify_vantage(s, asn, cgn_ases);
    if (!vclass) continue;

    // Table 7: address mismatch vs expired-mapping detection.
    const bool mismatch = s.ip_pub && s.ip_dev != *s.ip_pub;
    const bool detected = e.found_stateful();
    if (mismatch && detected) ++out.table7.mismatch_detected;
    if (mismatch && !detected) ++out.table7.mismatch_undetected;
    if (!mismatch && detected) ++out.table7.match_detected;
    if (!mismatch && !detected) ++out.table7.match_undetected;

    AsAgg& agg = per_as[asn];
    agg.vclass = *vclass;
    agg.most_distant.push_back(e.most_distant_nat());
    if (cgn_ases.contains(asn)) seen_cgn.insert(asn);

    // Figure 12 inputs.
    if (*vclass == VantageClass::noncellular_no_cgn) {
      // CPE timeout: the hop-1 NAT of a plain home-NAT session.
      for (const auto& h : e.hops)
        if (h.hop == 1 && h.stateful && h.timeout_s)
          out.fig12.cpe_per_session.push_back(*h.timeout_s);
    } else {
      // CGN timeout: only NATs far enough out to be the carrier NAT.
      for (const auto& h : e.hops)
        if (h.stateful && h.hop >= config_.cgn_min_hop && h.timeout_s)
          agg.cgn_timeouts.push_back(*h.timeout_s);
    }
    ++out.enum_sessions_used;
  }

  for (const auto& [asn, agg] : per_as) {
    if (agg.most_distant.size() < config_.min_sessions_per_as) continue;
    ++out.enum_ases;
    if (seen_cgn.contains(asn)) ++out.enum_cgn_ases;

    // Figure 11: the AS is represented by its most distant detected NAT.
    int distant = *std::max_element(agg.most_distant.begin(),
                                    agg.most_distant.end());
    if (distant >= 1) {
      auto& dist = out.fig11[agg.vclass];
      std::size_t bin = std::min<std::size_t>(
          static_cast<std::size_t>(distant - 1), dist.ases_by_hop.size() - 1);
      ++dist.ases_by_hop[bin];
      ++dist.total_ases;
    }

    // Figure 12: an AS is represented by its modal timeout.
    if (!agg.cgn_timeouts.empty()) {
      double modal = mode(agg.cgn_timeouts);
      if (agg.vclass == VantageClass::cellular_cgn)
        out.fig12.cellular_cgn_per_as.push_back(modal);
      else if (agg.vclass == VantageClass::noncellular_cgn)
        out.fig12.noncellular_cgn_per_as.push_back(modal);
    }
  }

  return out;
}

StunAnalysisResult StunAnalyzer::analyze(
    const std::vector<netalyzr::SessionResult>& sessions,
    const netcore::RoutingTable& routes,
    const std::unordered_set<netcore::Asn>& cgn_ases) const {
  StunAnalysisResult out;

  struct AsAgg {
    bool cellular = false;
    bool cgn = false;
    std::size_t sessions = 0;
    std::optional<int> most_permissive;  // stun::permissiveness rank
  };
  std::unordered_map<netcore::Asn, AsAgg> per_as;

  for (const auto& s : sessions) {
    if (!s.stun) continue;
    const netcore::Asn asn = session_asn(s, routes);
    const bool cgn = cgn_ases.contains(asn);
    ++out.sessions_used;

    AsAgg& agg = per_as[asn];
    agg.cellular = s.cellular;
    agg.cgn = cgn;
    ++agg.sessions;

    if (!cgn && !s.cellular && stun::is_nat_type(s.stun->type))
      ++out.cpe_sessions[s.stun->type];

    if (cgn) {
      if (auto rank = stun::permissiveness(s.stun->type)) {
        if (!agg.most_permissive || *rank > *agg.most_permissive)
          agg.most_permissive = *rank;
      }
    }
  }

  static constexpr stun::StunType kByRank[] = {
      stun::StunType::symmetric, stun::StunType::port_address_restricted,
      stun::StunType::address_restricted, stun::StunType::full_cone};

  for (const auto& [asn, agg] : per_as) {
    if (agg.sessions < config_.min_sessions_per_as) continue;
    ++out.ases;
    if (!agg.cgn) continue;
    ++out.cgn_ases;
    if (!agg.most_permissive) continue;
    stun::StunType type = kByRank[*agg.most_permissive];
    if (agg.cellular)
      ++out.cellular_cgn_ases[type];
    else
      ++out.noncellular_cgn_ases[type];
  }

  return out;
}

}  // namespace cgn::analysis
