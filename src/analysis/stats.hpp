// Small statistics helpers shared by the analysis passes: quantiles, modes,
// boxplot summaries, histograms.
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

namespace cgn::analysis {

/// Five-number summary for the Figure 12 style boxplots.
struct BoxplotSummary {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  std::size_t n = 0;
};

/// Linear-interpolated quantile of an unsorted sample. Throws on empty input
/// or q outside [0,1].
[[nodiscard]] inline double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile of empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile out of range");
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  auto hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

[[nodiscard]] inline BoxplotSummary boxplot(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("boxplot of empty sample");
  BoxplotSummary s;
  s.n = values.size();
  s.min = quantile(values, 0.0);
  s.q1 = quantile(values, 0.25);
  s.median = quantile(values, 0.5);
  s.q3 = quantile(values, 0.75);
  s.max = quantile(values, 1.0);
  return s;
}

/// Most frequent value (smallest wins ties). Throws on empty input.
template <typename T>
[[nodiscard]] T mode(const std::vector<T>& values) {
  if (values.empty()) throw std::invalid_argument("mode of empty sample");
  std::map<T, std::size_t> counts;
  for (const T& v : values) ++counts[v];
  auto best = counts.begin();
  for (auto it = counts.begin(); it != counts.end(); ++it)
    if (it->second > best->second) best = it;
  return best->first;
}

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin.
[[nodiscard]] inline std::vector<std::size_t> histogram(
    const std::vector<double>& values, double lo, double hi, int bins) {
  if (bins <= 0 || hi <= lo) throw std::invalid_argument("bad histogram spec");
  std::vector<std::size_t> out(static_cast<std::size_t>(bins), 0);
  const double width = (hi - lo) / bins;
  for (double v : values) {
    auto idx = static_cast<long>((v - lo) / width);
    idx = std::clamp(idx, 0L, static_cast<long>(bins - 1));
    ++out[static_cast<std::size_t>(idx)];
  }
  return out;
}

/// Smallest power of two >= x (x >= 1).
[[nodiscard]] inline std::uint32_t round_up_pow2(std::uint32_t x) {
  std::uint32_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace cgn::analysis
