// Headline figure extraction shared by the bench binaries and the
// cgn::observatory /figures endpoint. Keeping the key names and value
// computation in one place is what makes "observatory figures byte-equal
// to BENCH_<name>.json figures" a structural property instead of a test
// hope: both sides call the same function over the same result structs.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "analysis/bt_detector.hpp"
#include "analysis/coverage.hpp"
#include "analysis/netalyzr_detector.hpp"
#include "analysis/transition.hpp"

namespace cgn::analysis {

/// Headline numbers of one figure/table, in insertion order.
using Figures = std::vector<std::pair<std::string, double>>;

/// Figure 4 headline: ASes with any leakage cluster, and ASes whose
/// largest cluster crosses the 5x5 detection boundary in any range.
[[nodiscard]] Figures fig04_figures(const BtDetectionResult& bt);

/// Figure 5 headline: covered non-cellular ASes and CGN-positives.
[[nodiscard]] Figures fig05_figures(const NetalyzrDetectionResult& nz);

/// Table 5 headline: populations plus combined/cellular coverage cells.
[[nodiscard]] Figures tab05_figures(const CoverageResult& cov);

/// Figure 14 headline (IPv6-transition comparison): per-mechanism
/// detection accuracy (`detect_acc_*`, each in [0,1]), ground-truth
/// session populations, and median measured translator timeouts.
[[nodiscard]] Figures fig14_figures(const TransitionDetectionResult& tr);

/// Renders `{"key":value,...}` exactly as write_bench_json does (12
/// significant digits, obs::json_escape'd keys) — the byte-compare unit of
/// the streaming-vs-batch differential tests.
void render_figures_json(std::ostream& os, const Figures& figures);

}  // namespace cgn::analysis
