#include "analysis/port_analysis.hpp"

#include <algorithm>

#include "analysis/stats.hpp"

namespace cgn::analysis {

std::string_view to_string(PortStrategy s) noexcept {
  switch (s) {
    case PortStrategy::preservation: return "preservation";
    case PortStrategy::sequential: return "sequential";
    case PortStrategy::random: return "random";
  }
  return "?";
}

std::optional<PortStrategy> classify_session_ports(
    const std::vector<netalyzr::FlowObservation>& flows,
    const PortAnalysisConfig& config) {
  if (flows.size() < config.min_flows) return std::nullopt;
  std::size_t preserved = 0;
  for (const auto& f : flows)
    if (f.observed.port == f.local_port) ++preserved;
  if (static_cast<double>(preserved) >=
      config.preservation_fraction * static_cast<double>(flows.size()))
    return PortStrategy::preservation;

  bool sequential = true;
  for (std::size_t i = 1; i < flows.size(); ++i) {
    int delta = static_cast<int>(flows[i].observed.port) -
                static_cast<int>(flows[i - 1].observed.port);
    if (std::abs(delta) >= config.sequential_max_delta) {
      sequential = false;
      break;
    }
  }
  return sequential ? PortStrategy::sequential : PortStrategy::random;
}

namespace {
netcore::Asn session_asn(const netalyzr::SessionResult& s,
                         const netcore::RoutingTable& routes) {
  if (s.ip_pub) {
    if (auto asn = routes.origin_of(*s.ip_pub)) return *asn;
  }
  return s.asn;
}
}  // namespace

std::size_t PortAnalysisResult::count_dominant(PortStrategy s,
                                               bool cellular) const {
  std::size_t n = 0;
  for (const auto& [asn, p] : per_as)
    if (p.cellular == cellular && p.sessions > 0 && p.dominant == s) ++n;
  return n;
}

std::size_t PortAnalysisResult::count_chunked(bool cellular) const {
  std::size_t n = 0;
  for (const auto& [asn, p] : per_as)
    if (p.cellular == cellular && p.chunk_based) ++n;
  return n;
}

PortAnalysisResult PortAnalyzer::analyze(
    const std::vector<netalyzr::SessionResult>& sessions,
    const netcore::RoutingTable& routes,
    const std::unordered_set<netcore::Asn>& cgn_ases) const {
  PortAnalysisResult out;

  // Per-AS scratch: within-session port spans of random-translation sessions
  // (for chunk detection).
  std::unordered_map<netcore::Asn, std::vector<std::uint32_t>> random_spans;

  for (const auto& s : sessions) {
    const netcore::Asn asn = session_asn(s, routes);
    const bool cgn = cgn_ases.contains(asn);
    auto strategy = classify_session_ports(s.tcp_flows, config_);

    // Figure 8(a)/(b) inputs.
    if (strategy) {
      bool preserved = *strategy == PortStrategy::preservation;
      for (const auto& f : s.tcp_flows)
        (preserved ? out.ports_preserved_sessions
                   : out.ports_translated_sessions)
            .push_back(f.observed.port);
      if (!cgn && s.cpe_model) {
        auto& [total, preserving] = out.per_cpe_model[*s.cpe_model];
        ++total;
        if (preserved) ++preserving;
      }
    }

    if (!cgn) continue;  // §6.2 profiles the *identified CGNs*

    AsPortProfile& p = out.per_as[asn];
    p.asn = asn;
    p.cellular = s.cellular;

    if (strategy) {
      ++p.sessions;
      ++p.by_strategy[static_cast<std::size_t>(*strategy)];
      if (*strategy == PortStrategy::random && !s.tcp_flows.empty()) {
        auto [lo, hi] = std::minmax_element(
            s.tcp_flows.begin(), s.tcp_flows.end(),
            [](const auto& a, const auto& b) {
              return a.observed.port < b.observed.port;
            });
        random_spans[asn].push_back(
            static_cast<std::uint32_t>(hi->observed.port) -
            static_cast<std::uint32_t>(lo->observed.port));
      }
    }

    if (s.tcp_flows.size() >= 2) {
      ++p.pooling_sessions;
      std::unordered_set<netcore::Ipv4Address> ips;
      for (const auto& f : s.tcp_flows) ips.insert(f.observed.address);
      if (ips.size() > 1) ++p.multi_ip_sessions;
    }
  }

  for (auto& [asn, p] : out.per_as) {
    // Dominant strategy.
    std::size_t best = 0;
    for (std::size_t i = 1; i < p.by_strategy.size(); ++i)
      if (p.by_strategy[i] > p.by_strategy[best]) best = i;
    p.dominant = static_cast<PortStrategy>(best);

    // Chunk-based allocation: enough random sessions, all narrow.
    auto it = random_spans.find(asn);
    if (it != random_spans.end() &&
        it->second.size() >= config_.chunk_min_sessions) {
      const auto& spans = it->second;
      bool all_narrow = std::all_of(spans.begin(), spans.end(), [&](auto sp) {
        return sp < config_.chunk_max_range;
      });
      if (all_narrow) {
        p.chunk_based = true;
        // A 10-flow session samples its chunk sparsely; the widest observed
        // span approaches the chunk size from below, so round it up.
        std::uint32_t widest = *std::max_element(spans.begin(), spans.end());
        p.chunk_size_estimate = round_up_pow2(widest + 1);
      }
    }

    if (p.pooling_sessions > 0)
      p.arbitrary_pooling =
          static_cast<double>(p.multi_ip_sessions) >
          config_.arbitrary_pooling_fraction *
              static_cast<double>(p.pooling_sessions);
  }

  return out;
}

}  // namespace cgn::analysis
