// Disjoint-set union for the per-AS leakage-graph clustering of §4.1:
// a fixed-size UnionFind for batch analysis over a known vertex count, and
// a growable DynamicUnionFind for the streaming path, where vertices appear
// one leak edge at a time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace cgn::analysis {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  [[nodiscard]] std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Unites the sets containing a and b; returns true when they were
  /// previously disjoint.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

  [[nodiscard]] bool connected(std::size_t a, std::size_t b) {
    return find(a) == find(b);
  }

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
};

/// Growable disjoint-set for online clustering: the streaming analyzer
/// interns vertices as leak edges arrive and merges immediately, so the
/// largest-cluster tally is available after every event. Connectivity is a
/// pure function of the edge *set* — union order only changes the internal
/// tree shape — which is what lets a replayed or resumed stream converge on
/// the batch result regardless of event order.
class DynamicUnionFind {
 public:
  /// Adds an isolated vertex and returns its index.
  std::size_t add_vertex() {
    parent_.push_back(parent_.size());
    rank_.push_back(0);
    return parent_.size() - 1;
  }

  [[nodiscard]] std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Unites the sets containing a and b; returns true when they were
  /// previously disjoint.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

  [[nodiscard]] bool connected(std::size_t a, std::size_t b) {
    return find(a) == find(b);
  }

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

  void clear() noexcept {
    parent_.clear();
    rank_.clear();
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
};

}  // namespace cgn::analysis
