// Disjoint-set union for the per-AS leakage-graph clustering of §4.1.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace cgn::analysis {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  [[nodiscard]] std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Unites the sets containing a and b; returns true when they were
  /// previously disjoint.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

  [[nodiscard]] bool connected(std::size_t a, std::size_t b) {
    return find(a) == find(b);
  }

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
};

}  // namespace cgn::analysis
