// BitTorrent-based CGN detection (paper §4.1).
//
// From the crawl dataset, build one leakage graph per (AS, reserved range):
// vertices are the public IPs of leaking peers and the internal IPs they
// reported; an edge means "this public peer leaked that internal peer".
// NAT pooling shows up as connected clusters spanning several public IPs;
// the detection rule requires the largest cluster to contain at least five
// public and five internal IPs (guarding against dynamic-addressing
// artifacts). Internal peers leaked from more than one AS are discarded as
// likely VPN artifacts.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crawler/crawl_dataset.hpp"
#include "netcore/as_registry.hpp"
#include "netcore/ipv4.hpp"
#include "netcore/routing_table.hpp"

namespace cgn::analysis {

struct BtDetectorConfig {
  /// Detection boundary of Figure 4: the largest cluster must contain at
  /// least this many distinct public (leaking) IPs ...
  std::size_t min_cluster_public_ips = 5;
  /// ... and at least this many distinct internal IPs.
  std::size_t min_cluster_internal_ips = 5;
  /// An AS counts as *covered* once this many of its peers answered queries.
  std::size_t min_queried_peers = 1;
};

/// Largest-connected-cluster size for one (AS, range) — one point of Fig. 4.
struct ClusterSize {
  std::size_t public_ips = 0;
  std::size_t internal_ips = 0;
};

/// The shared "largest cluster" order: total unique IPs first (a cluster
/// spans both sides), public count as the tie-break. Two clusters equal
/// under this order have identical (public, internal) sizes, so the chosen
/// ClusterSize is independent of component iteration order — the batch and
/// streaming paths must agree on this for their figures to match.
[[nodiscard]] inline bool better_cluster(const ClusterSize& a,
                                         const ClusterSize& b) noexcept {
  const std::size_t ta = a.public_ips + a.internal_ips;
  const std::size_t tb = b.public_ips + b.internal_ips;
  if (ta != tb) return ta > tb;
  return a.public_ips > b.public_ips;
}

/// One row of Table 3.
struct RangeLeakStats {
  std::uint64_t internal_total = 0;       ///< internal (endpoint,id) tuples
  std::uint64_t internal_unique_ips = 0;
  std::uint64_t leaking_total = 0;        ///< leaking (endpoint,id) tuples
  std::uint64_t leaking_unique_ips = 0;
  std::uint64_t leaking_ases = 0;
};

/// Crawl summary (Table 2).
struct CrawlSummary {
  std::uint64_t queried_peers = 0;
  std::uint64_t queried_unique_ips = 0;
  std::uint64_t queried_ases = 0;
  std::uint64_t learned_peers = 0;
  std::uint64_t learned_unique_ips = 0;
  std::uint64_t learned_ases = 0;
  std::uint64_t responding_peers = 0;
  std::uint64_t responding_unique_ips = 0;
};

struct AsBtVerdict {
  netcore::Asn asn = 0;
  std::size_t queried_peers = 0;
  /// Largest cluster per reserved range (index: ReservedRange - 1).
  std::array<ClusterSize, netcore::kReservedRangeCount> largest{};
  bool covered = false;
  bool cgn_positive = false;
  /// Ranges whose cluster crossed the boundary (internal space usage, Fig 7a).
  std::vector<netcore::ReservedRange> detected_ranges;
};

struct BtDetectionResult {
  CrawlSummary summary;
  std::array<RangeLeakStats, netcore::kReservedRangeCount> per_range;
  std::unordered_map<netcore::Asn, AsBtVerdict> per_as;

  [[nodiscard]] std::size_t covered_ases() const {
    std::size_t n = 0;
    for (const auto& [asn, v] : per_as) n += v.covered ? 1 : 0;
    return n;
  }
  [[nodiscard]] std::size_t cgn_positive_ases() const {
    std::size_t n = 0;
    for (const auto& [asn, v] : per_as) n += v.cgn_positive ? 1 : 0;
    return n;
  }
};

class BtDetector {
 public:
  explicit BtDetector(BtDetectorConfig config = {}) : config_(config) {}

  [[nodiscard]] BtDetectionResult analyze(
      const crawler::CrawlDataset& data,
      const netcore::RoutingTable& routes) const;

  [[nodiscard]] const BtDetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  BtDetectorConfig config_;
};

}  // namespace cgn::analysis
