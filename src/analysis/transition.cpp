#include "analysis/transition.hpp"

#include <unordered_map>

namespace cgn::analysis {

namespace {

[[nodiscard]] bool in_192_168(netcore::Ipv4Address a) noexcept {
  return (a.value() & 0xFFFF0000u) == 0xC0A80000u;
}

}  // namespace

std::string_view to_string(TransitionVerdict v) noexcept {
  switch (v) {
    case TransitionVerdict::nat444: return "nat444";
    case TransitionVerdict::nat64: return "nat64";
    case TransitionVerdict::xlat464: return "464xlat";
    case TransitionVerdict::dslite: return "dslite";
  }
  return "?";
}

TransitionVerdict truth_verdict(const netalyzr::SessionResult& s) noexcept {
  switch (s.line_mode) {
    case nat::TranslatorMode::nat64:
      return s.line_clat ? TransitionVerdict::xlat464
                         : TransitionVerdict::nat64;
    case nat::TranslatorMode::dslite_aftr:
      return TransitionVerdict::dslite;
    case nat::TranslatorMode::nat44:
      break;
  }
  return TransitionVerdict::nat444;
}

TransitionDetectionResult TransitionDetector::analyze(
    const std::vector<netalyzr::SessionResult>& sessions) const {
  TransitionDetectionResult result;

  // Group battery sessions per AS, in first-seen order (keeps every
  // aggregate independent of hash-map iteration).
  std::vector<netcore::Asn> as_order;
  std::unordered_map<netcore::Asn, std::vector<std::size_t>> by_as;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (!sessions[i].transition) continue;
    ++result.observed_sessions;
    auto [it, inserted] = by_as.try_emplace(sessions[i].asn);
    if (inserted) as_order.push_back(sessions[i].asn);
    it->second.push_back(i);
  }

  for (netcore::Asn asn : as_order) {
    const std::vector<std::size_t>& idx = by_as[asn];
    if (idx.size() < config_.min_sessions) continue;
    ++result.scored_ases;

    // The DS-Lite signature is an AS-level property of the *unexplained*
    // sessions — no pref64 on path, RFC 1918 ip_dev, and no IGD answering
    // UPnP (an IGD reply proves a home NAT at ip_dev, which explains the
    // private address without any softwire; a B4 is not a NAT and has
    // none). One identical factory-default ip_dev dominating those is how
    // a per-subscriber B4 fleet looks from the server side.
    std::size_t candidates = 0;
    std::unordered_map<std::uint32_t, std::size_t> dev_counts;
    for (std::size_t i : idx) {
      const netalyzr::SessionResult& s = sessions[i];
      if (s.transition->pref64_detected || s.ip_cpe ||
          !in_192_168(s.ip_dev))
        continue;
      ++candidates;
      ++dev_counts[s.ip_dev.value()];
    }
    std::uint32_t dominant_dev = 0;
    std::size_t dominant_count = 0;
    for (const auto& [dev, count] : dev_counts)
      if (count > dominant_count ||
          (count == dominant_count && dev < dominant_dev)) {
        dominant_dev = dev;
        dominant_count = count;
      }
    const bool dslite_as =
        dominant_count >= config_.min_dup_sessions &&
        static_cast<double>(dominant_count) >=
            config_.dup_ip_dev_threshold * static_cast<double>(candidates);

    for (std::size_t i : idx) {
      const netalyzr::SessionResult& s = sessions[i];
      const netalyzr::TransitionObservation& obs = *s.transition;

      TransitionVerdict verdict;
      if (obs.pref64_detected) {
        verdict = obs.literal_v4_ok ? TransitionVerdict::xlat464
                                    : TransitionVerdict::nat64;
      } else if (dslite_as && !s.ip_cpe && s.ip_dev.value() == dominant_dev &&
                 s.ip_pub && *s.ip_pub != s.ip_dev) {
        verdict = TransitionVerdict::dslite;
      } else {
        verdict = TransitionVerdict::nat444;
      }

      const TransitionVerdict truth = truth_verdict(s);
      MechanismScore& truth_score =
          result.mechanisms[static_cast<std::size_t>(truth)];
      ++truth_score.truth_sessions;
      ++result.mechanisms[static_cast<std::size_t>(verdict)]
            .classified_sessions;
      if (verdict == truth) ++truth_score.correct_sessions;
      if (obs.translator_timeout_s)
        truth_score.timeouts_s.push_back(*obs.translator_timeout_s);
    }
  }
  return result;
}

}  // namespace cgn::analysis
