#include "analysis/netalyzr_detector.hpp"

#include "analysis/stream.hpp"

namespace cgn::analysis {

std::string_view to_string(Table4Row r) noexcept {
  switch (r) {
    case Table4Row::r192: return "192X";
    case Table4Row::r172: return "172X";
    case Table4Row::r10: return "10X";
    case Table4Row::r100: return "100X";
    case Table4Row::unrouted: return "unrouted";
    case Table4Row::routed_match: return "routed match";
    case Table4Row::routed_mismatch: return "routed mismatch";
  }
  return "?";
}

Table4Row table4_row(netcore::Ipv4Address local,
                     std::optional<netcore::Ipv4Address> pub,
                     const netcore::RoutingTable& routes) {
  switch (netcore::classify_reserved(local)) {
    case netcore::ReservedRange::r192: return Table4Row::r192;
    case netcore::ReservedRange::r172: return Table4Row::r172;
    case netcore::ReservedRange::r10: return Table4Row::r10;
    case netcore::ReservedRange::r100: return Table4Row::r100;
    case netcore::ReservedRange::none: break;
  }
  switch (classify_address(local, pub, routes)) {
    case AddressClass::unrouted: return Table4Row::unrouted;
    case AddressClass::routed_match: return Table4Row::routed_match;
    default: return Table4Row::routed_mismatch;
  }
}

std::size_t NetalyzrDetectionResult::covered(bool cellular) const {
  std::size_t n = 0;
  for (const auto& [asn, v] : per_as)
    if (v.cellular == cellular && v.covered) ++n;
  return n;
}

std::size_t NetalyzrDetectionResult::cgn_positive(bool cellular) const {
  std::size_t n = 0;
  for (const auto& [asn, v] : per_as)
    if (v.cellular == cellular && v.covered && v.cgn_positive) ++n;
  return n;
}

// Batch analysis is a replay of the session list through the streaming
// classifier (see stream.hpp): one code path keeps the observatory's live
// figures and the batch pipeline's identical by construction.
NetalyzrDetectionResult NetalyzrDetector::analyze(
    const std::vector<netalyzr::SessionResult>& sessions,
    const netcore::RoutingTable& routes) const {
  StreamingNetalyzrClassifier stream(routes, config_);
  for (const auto& s : sessions) stream.ingest(s);
  return stream.snapshot();
}

}  // namespace cgn::analysis
