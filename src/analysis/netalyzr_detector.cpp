#include "analysis/netalyzr_detector.hpp"

#include <algorithm>

namespace cgn::analysis {

std::string_view to_string(Table4Row r) noexcept {
  switch (r) {
    case Table4Row::r192: return "192X";
    case Table4Row::r172: return "172X";
    case Table4Row::r10: return "10X";
    case Table4Row::r100: return "100X";
    case Table4Row::unrouted: return "unrouted";
    case Table4Row::routed_match: return "routed match";
    case Table4Row::routed_mismatch: return "routed mismatch";
  }
  return "?";
}

Table4Row table4_row(netcore::Ipv4Address local,
                     std::optional<netcore::Ipv4Address> pub,
                     const netcore::RoutingTable& routes) {
  switch (netcore::classify_reserved(local)) {
    case netcore::ReservedRange::r192: return Table4Row::r192;
    case netcore::ReservedRange::r172: return Table4Row::r172;
    case netcore::ReservedRange::r10: return Table4Row::r10;
    case netcore::ReservedRange::r100: return Table4Row::r100;
    case netcore::ReservedRange::none: break;
  }
  switch (classify_address(local, pub, routes)) {
    case AddressClass::unrouted: return Table4Row::unrouted;
    case AddressClass::routed_match: return Table4Row::routed_match;
    default: return Table4Row::routed_mismatch;
  }
}

namespace {

void tally(Table4Column& col, Table4Row row) {
  ++col.n;
  ++col.rows[static_cast<std::size_t>(row)];
}

netcore::Asn session_asn(const netalyzr::SessionResult& s,
                         const netcore::RoutingTable& routes) {
  if (s.ip_pub) {
    if (auto asn = routes.origin_of(*s.ip_pub)) return *asn;
  }
  return s.asn;  // fallback: vantage-point ground truth
}

bool translated_row(Table4Row r) {
  return r != Table4Row::routed_match;
}

}  // namespace

std::size_t NetalyzrDetectionResult::covered(bool cellular) const {
  std::size_t n = 0;
  for (const auto& [asn, v] : per_as)
    if (v.cellular == cellular && v.covered) ++n;
  return n;
}

std::size_t NetalyzrDetectionResult::cgn_positive(bool cellular) const {
  std::size_t n = 0;
  for (const auto& [asn, v] : per_as)
    if (v.cellular == cellular && v.covered && v.cgn_positive) ++n;
  return n;
}

NetalyzrDetectionResult NetalyzrDetector::analyze(
    const std::vector<netalyzr::SessionResult>& sessions,
    const netcore::RoutingTable& routes) const {
  NetalyzrDetectionResult out;

  // --- Table 4 and the top CPE-assignment blocks --------------------------
  std::unordered_map<netcore::Ipv4Prefix, std::size_t> dev_block_count;
  for (const auto& s : sessions) {
    Table4Row dev_row = table4_row(s.ip_dev, s.ip_pub, routes);
    if (s.cellular) {
      tally(out.table4.cellular_dev, dev_row);
    } else {
      tally(out.table4.noncellular_dev, dev_row);
      ++dev_block_count[netcore::slash24_of(s.ip_dev)];
      if (s.ip_cpe)
        tally(out.table4.noncellular_cpe,
              table4_row(*s.ip_cpe, s.ip_pub, routes));
    }
  }
  {
    std::vector<std::pair<netcore::Ipv4Prefix, std::size_t>> blocks(
        dev_block_count.begin(), dev_block_count.end());
    std::sort(blocks.begin(), blocks.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    for (std::size_t i = 0; i < blocks.size() && i < config_.top_cpe_blocks;
         ++i)
      out.cpe_blocks.push_back(blocks[i].first);
  }
  auto in_cpe_block = [&](netcore::Ipv4Address a) {
    auto p24 = netcore::slash24_of(a);
    return std::find(out.cpe_blocks.begin(), out.cpe_blocks.end(), p24) !=
           out.cpe_blocks.end();
  };

  // --- Group sessions per AS ----------------------------------------------
  struct AsAgg {
    bool cellular = false;
    std::vector<const netalyzr::SessionResult*> sessions;
  };
  std::unordered_map<netcore::Asn, AsAgg> groups;
  for (const auto& s : sessions) {
    AsAgg& g = groups[session_asn(s, routes)];
    g.cellular = s.cellular;  // ASes are homogeneous in network type
    g.sessions.push_back(&s);
  }

  for (auto& [asn, g] : groups) {
    AsNetalyzrVerdict v;
    v.asn = asn;
    v.cellular = g.cellular;
    v.sessions = g.sessions.size();

    if (g.cellular) {
      v.covered = v.sessions >= config_.min_cellular_sessions;
      std::size_t translated = 0;
      for (const auto* s : g.sessions) {
        Table4Row row = table4_row(s->ip_dev, s->ip_pub, routes);
        if (translated_row(row)) ++translated;
        auto range = netcore::classify_reserved(s->ip_dev);
        if (range != netcore::ReservedRange::none) {
          v.internal_ranges.insert(range);
        } else if (row == Table4Row::unrouted ||
                   row == Table4Row::routed_mismatch) {
          // Routable (or nominally public) space used internally: Fig 7(b).
          v.uses_routable_internal = true;
          v.routable_internal_slash8.insert(s->ip_dev.octet(0));
        }
      }
      if (translated == 0)
        v.assignment = CellularAssignment::public_only;
      else if (translated == g.sessions.size())
        v.assignment = CellularAssignment::internal_only;
      else
        v.assignment = CellularAssignment::mixed;
      v.cgn_positive = translated > 0;
    } else {
      v.covered = v.sessions >= config_.min_noncellular_sessions;
      std::unordered_set<netcore::Ipv4Prefix> cpe24;
      std::array<std::unordered_set<netcore::Ipv4Prefix>,
                 netcore::kReservedRangeCount>
          cpe24_by_range;
      for (const auto* s : g.sessions) {
        if (!s->ip_cpe || !s->ip_pub) continue;
        if (*s->ip_cpe == *s->ip_pub) continue;      // single NAT only
        if (in_cpe_block(*s->ip_cpe)) continue;      // likely a second CPE
        ++v.candidate_sessions;
        auto p24 = netcore::slash24_of(*s->ip_cpe);
        cpe24.insert(p24);
        auto range = netcore::classify_reserved(*s->ip_cpe);
        if (range != netcore::ReservedRange::none) {
          auto idx = static_cast<std::size_t>(static_cast<int>(range) - 1);
          ++v.fig5[idx].candidate_sessions;
          cpe24_by_range[idx].insert(p24);
          v.internal_ranges.insert(range);
        } else {
          Table4Row row = table4_row(*s->ip_cpe, s->ip_pub, routes);
          if (row == Table4Row::unrouted || row == Table4Row::routed_mismatch) {
            v.uses_routable_internal = true;
            v.routable_internal_slash8.insert(s->ip_cpe->octet(0));
          }
        }
      }
      v.unique_cpe_slash24 = cpe24.size();
      for (std::size_t r = 0; r < cpe24_by_range.size(); ++r)
        v.fig5[r].unique_slash24 = cpe24_by_range[r].size();
      v.cgn_positive =
          v.candidate_sessions >= config_.min_candidate_sessions &&
          static_cast<double>(v.unique_cpe_slash24) >=
              config_.slash24_diversity_factor *
                  static_cast<double>(v.candidate_sessions);
    }
    out.per_as.emplace(asn, std::move(v));
  }

  return out;
}

}  // namespace cgn::analysis
