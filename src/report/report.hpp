// Plain-text rendering of tables and figure-like charts, so each bench
// binary can print the same rows/series the paper reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cgn::report {

/// Fixed-width table with a header row; column widths auto-fit.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3%" with one decimal.
[[nodiscard]] std::string pct(double fraction);
/// Fixed-precision double.
[[nodiscard]] std::string num(double value, int precision = 1);
/// Counts with thousands separators ("21,500,000").
[[nodiscard]] std::string count(std::uint64_t n);

/// Horizontal bar chart: one line per (label, value).
void bar_chart(std::ostream& os, const std::vector<std::string>& labels,
               const std::vector<double>& values, int width = 50,
               const std::string& unit = "");

/// Stacked horizontal bars whose segments sum to 100% per row (Figures 7(a),
/// 9, 13). `series` holds per-segment fractions for each row.
void stacked_bars(std::ostream& os, const std::vector<std::string>& row_labels,
                  const std::vector<std::string>& segment_labels,
                  const std::vector<std::vector<double>>& series,
                  int width = 60);

/// Log-log scatter as an ASCII grid (Figures 4, 5), with an optional
/// rectangular detection boundary drawn at (x_thresh, y_thresh).
struct ScatterPoint {
  double x = 0;
  double y = 0;
};
void scatter_loglog(std::ostream& os, const std::vector<ScatterPoint>& points,
                    double x_thresh = 0, double y_thresh = 0, int cols = 60,
                    int rows = 20);

/// One-line boxplot rendering: "min |--[ q1 | median | q3 ]--| max (n=..)".
void boxplot_line(std::ostream& os, const std::string& label, double min,
                  double q1, double median, double q3, double max,
                  std::size_t n);

/// Writes rows as CSV (no quoting of separators; keep cells clean).
void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace cgn::report
