#include "report/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cgn::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total - 2, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string pct(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << fraction * 100.0 << "%";
  return os.str();
}

std::string num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void bar_chart(std::ostream& os, const std::vector<std::string>& labels,
               const std::vector<double>& values, int width,
               const std::string& unit) {
  double max_value = 0;
  for (double v : values) max_value = std::max(max_value, v);
  std::size_t label_w = 0;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());
  for (std::size_t i = 0; i < labels.size() && i < values.size(); ++i) {
    int bar = max_value > 0 ? static_cast<int>(std::lround(
                                  values[i] / max_value * width))
                            : 0;
    os << "  " << std::left << std::setw(static_cast<int>(label_w))
       << labels[i] << " |" << std::string(static_cast<std::size_t>(bar), '#')
       << " " << num(values[i]) << unit << "\n";
  }
}

void stacked_bars(std::ostream& os, const std::vector<std::string>& row_labels,
                  const std::vector<std::string>& segment_labels,
                  const std::vector<std::vector<double>>& series, int width) {
  static constexpr char kGlyphs[] = {'#', '=', ':', '.', '+', '%', 'o'};
  std::size_t label_w = 0;
  for (const auto& l : row_labels) label_w = std::max(label_w, l.size());

  for (std::size_t r = 0; r < row_labels.size() && r < series.size(); ++r) {
    os << "  " << std::left << std::setw(static_cast<int>(label_w))
       << row_labels[r] << " |";
    int used = 0;
    for (std::size_t s = 0; s < series[r].size(); ++s) {
      int seg = static_cast<int>(std::lround(series[r][s] * width));
      seg = std::min(seg, width - used);
      os << std::string(static_cast<std::size_t>(std::max(seg, 0)),
                        kGlyphs[s % sizeof(kGlyphs)]);
      used += std::max(seg, 0);
    }
    os << std::string(static_cast<std::size_t>(std::max(width - used, 0)), ' ')
       << "|\n";
  }
  os << "  legend:";
  for (std::size_t s = 0; s < segment_labels.size(); ++s)
    os << "  " << kGlyphs[s % sizeof(kGlyphs)] << "=" << segment_labels[s];
  os << "\n";
}

void scatter_loglog(std::ostream& os, const std::vector<ScatterPoint>& points,
                    double x_thresh, double y_thresh, int cols, int rows) {
  if (points.empty()) {
    os << "  (no data)\n";
    return;
  }
  double max_x = 1, max_y = 1;
  for (const auto& p : points) {
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  auto log_scale = [](double v, double max_v, int n) {
    if (v < 1) v = 1;
    double f = std::log(v) / std::log(std::max(max_v, 2.0));
    int idx = static_cast<int>(f * (n - 1));
    return std::clamp(idx, 0, n - 1);
  };
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), ' '));
  for (const auto& p : points) {
    int cx = log_scale(p.x, max_x, cols);
    int cy = log_scale(p.y, max_y, rows);
    char& cell = grid[static_cast<std::size_t>(rows - 1 - cy)]
                     [static_cast<std::size_t>(cx)];
    cell = cell == ' ' ? '.' : (cell == '.' ? 'o' : '@');
  }
  // Detection boundary (points at or beyond both thresholds are positives).
  if (x_thresh > 0 && y_thresh > 0) {
    int bx = log_scale(x_thresh, max_x, cols);
    int by = log_scale(y_thresh, max_y, rows);
    for (int r = 0; r < rows - 1 - by; ++r) {
      char& cell = grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(bx)];
      if (cell == ' ') cell = '|';
    }
    for (int c = bx; c < cols; ++c) {
      char& cell =
          grid[static_cast<std::size_t>(rows - 1 - by)][static_cast<std::size_t>(c)];
      if (cell == ' ') cell = '-';
    }
  }
  os << "  y: log scale, max=" << num(max_y, 0)
     << "   x: log scale, max=" << num(max_x, 0) << "\n";
  for (const auto& line : grid) os << "  |" << line << "\n";
  os << "  +" << std::string(static_cast<std::size_t>(cols), '-') << "\n";
}

void boxplot_line(std::ostream& os, const std::string& label, double min,
                  double q1, double median, double q3, double max,
                  std::size_t n) {
  os << "  " << std::left << std::setw(28) << label << " min=" << num(min)
     << "  q1=" << num(q1) << "  med=" << num(median) << "  q3=" << num(q3)
     << "  max=" << num(max) << "  (n=" << n << ")\n";
}

void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ",";
      os << cells[i];
    }
    os << "\n";
  };
  emit(header);
  for (const auto& row : rows) emit(row);
}

}  // namespace cgn::report
