// The NAT middlebox: address/port translation with configurable mapping
// type, port allocation, pooling, timeouts and hairpin behaviour.
//
// One class models both CPE NATs (pool of one address, port preservation,
// 192X inside) and carrier-grade NATs (large pools, chunked/random ports,
// 10X/100X inside) — the paper's point is precisely that these are the same
// mechanism at different scales and configurations.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "flat/arena.hpp"
#include "flat/flat.hpp"
#include "nat/nat_types.hpp"
#include "netcore/ipv4.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"

namespace cgn::nat {

/// Counters exposed for tests and diagnostics.
struct NatStats {
  std::uint64_t mappings_created = 0;
  std::uint64_t mappings_expired = 0;
  std::uint64_t outbound_translated = 0;
  std::uint64_t inbound_translated = 0;
  std::uint64_t inbound_filtered = 0;
  std::uint64_t inbound_no_mapping = 0;
  std::uint64_t hairpins_forwarded = 0;
  std::uint64_t hairpins_dropped = 0;
  std::uint64_t port_exhaustion_drops = 0;
  std::uint64_t restarts = 0;  ///< reset_state() calls (scheduled or manual)
  std::uint64_t restart_flushed_mappings = 0;
  std::uint64_t pressure_drops = 0;  ///< exhaustion inside a pressure window
};

class NatDevice final : public sim::Middlebox {
 public:
  /// Throws std::invalid_argument when the pool is empty, the port range is
  /// inverted, or chunk_random is configured with chunk_size == 0.
  NatDevice(NatConfig config, std::vector<netcore::Ipv4Address> external_pool,
            sim::Rng rng);
  /// Rolls the device's live state out of the global obs gauges
  /// (nat.active_mappings, nat.ports_in_use, nat.port_capacity).
  ~NatDevice() override;

  NatDevice(const NatDevice&) = delete;
  NatDevice& operator=(const NatDevice&) = delete;

  // --- sim::Middlebox interface -------------------------------------------
  Verdict process_outbound(sim::Packet& pkt, sim::SimTime now) override;
  Verdict process_inbound(sim::Packet& pkt, sim::SimTime now) override;
  Verdict process_hairpin(sim::Packet& pkt, sim::SimTime now) override;
  [[nodiscard]] bool owns_external(netcore::Ipv4Address a) const override;

  // --- introspection -------------------------------------------------------
  [[nodiscard]] const NatConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<netcore::Ipv4Address>& external_pool()
      const noexcept {
    return pool_;
  }
  [[nodiscard]] const NatStats& stats() const noexcept { return stats_; }

  /// The answer a UPnP GetExternalIPAddress query would return (the device's
  /// primary external address). Meaningful for single-address CPEs.
  [[nodiscard]] netcore::Ipv4Address upnp_external_address() const {
    return pool_.front();
  }

  /// External endpoint currently mapped for an internal endpoint (and, for
  /// symmetric NATs, a specific remote). Expired mappings are not reported.
  [[nodiscard]] std::optional<netcore::Endpoint> lookup_external(
      netcore::Protocol proto, const netcore::Endpoint& internal,
      const netcore::Endpoint& remote, sim::SimTime now) const;

  /// Live mappings at `now` (expired-but-uncollected entries excluded).
  [[nodiscard]] std::size_t active_mappings(sim::SimTime now) const;

  /// Removes expired mappings and releases their external ports.
  void collect_garbage(sim::SimTime now);

  /// The port block assigned to a subscriber under chunk_random, if any.
  [[nodiscard]] std::optional<std::pair<std::uint16_t, std::uint32_t>>
  subscriber_chunk(netcore::Ipv4Address internal_ip) const;

  /// Installs a permanent full-cone mapping, as a UPnP IGD AddPortMapping
  /// request would (BitTorrent clients commonly do this on CPEs). The
  /// external port follows the device's allocation strategy with
  /// `internal.port` as the preservation hint. Returns the external endpoint,
  /// or nullopt on port exhaustion.
  std::optional<netcore::Endpoint> add_static_mapping(
      netcore::Protocol proto, const netcore::Endpoint& internal,
      sim::SimTime now);

  /// Observer hooks for translation logging (paper §2: operators must be
  /// able to map flows back to subscribers). `on_created` fires when a
  /// mapping is allocated; `on_expired` fires when it is reclaimed (expiry,
  /// garbage collection or renumbering).
  using CreatedHook =
      std::function<void(netcore::Protocol, const netcore::Endpoint& internal,
                         const netcore::Endpoint& external,
                         sim::SimTime created_at)>;
  using ExpiredHook =
      std::function<void(netcore::Protocol, const netcore::Endpoint& external,
                         sim::SimTime created_at, sim::SimTime now)>;
  void set_observer(CreatedHook on_created, ExpiredHook on_expired) {
    on_created_ = std::move(on_created);
    on_expired_ = std::move(on_expired);
  }

  /// Replaces one external pool address (ISP renumbering / DHCP lease
  /// change). All mappings on the old address are dropped — established
  /// flows break, exactly as when a residential line is renumbered.
  /// Returns false when `old_address` is not in the pool or `new_address`
  /// already is.
  bool renumber_external(netcore::Ipv4Address old_address,
                         netcore::Ipv4Address new_address);

  /// Arms scheduled restarts / port-pool pressure windows (fault::FaultPlan
  /// §nat). Phases stagger devices so a fleet does not reboot in lockstep;
  /// the builder draws them from the plan's substream. Restarts fire lazily
  /// from the translation path, at the first packet after a period boundary.
  void set_fault_profile(const fault::NatFaults& faults,
                         double restart_phase_s, double pressure_phase_s);

  /// Device reboot: keeps configuration (pool, port range, strategy, RNG)
  /// but flushes all dynamic state — mappings, used-port sets, sequential
  /// cursors, paired-pool stickiness and chunk_random bookkeeping
  /// (subscriber chunk assignments + taken-chunk sets), firing the expiry
  /// hook for every live mapping so the TranslationLog closes its records.
  /// Freed chunks are immediately reusable (see nat_fault_test).
  void reset_state(sim::SimTime now);

  /// True while a transient port-pool pressure window blocks the top
  /// pressure_reserve_fraction share of the port range.
  [[nodiscard]] bool pressure_active(sim::SimTime now) const;

 private:
  struct OutKey {
    netcore::Protocol proto;
    netcore::Endpoint internal;
    netcore::Endpoint remote;  ///< zero endpoint for non-symmetric mappings
    bool operator==(const OutKey&) const = default;
  };
  struct OutKeyHash {
    std::size_t operator()(const OutKey& k) const noexcept;
  };
  struct InKey {
    netcore::Protocol proto;
    netcore::Endpoint external;
    bool operator==(const InKey&) const = default;
  };
  struct InKeyHash {
    std::size_t operator()(const InKey& k) const noexcept;
  };

  /// Coarse TCP connection state for timeout selection (RFC 5382).
  enum class TcpState : std::uint8_t { transitory, established };

  struct Mapping {
    OutKey key;
    netcore::Endpoint external;
    sim::SimTime created_at = 0;
    sim::SimTime last_refresh = 0;
    bool static_mapping = false;  ///< UPnP-style: never expires, never filters
    TcpState tcp_state = TcpState::transitory;
    // Destinations contacted through this mapping; only the sets the
    // filtering policy needs are populated.
    flat::FlatSet<netcore::Ipv4Address> contacted_addresses;
    flat::FlatSet<netcore::Endpoint> contacted_endpoints;
  };

  [[nodiscard]] sim::SimTime timeout_for(const Mapping& m) const {
    if (m.key.proto == netcore::Protocol::udp) return config_.udp_timeout_s;
    return m.tcp_state == TcpState::established
               ? config_.tcp_timeout_s
               : config_.tcp_transitory_timeout_s;
  }
  [[nodiscard]] bool expired(const Mapping& m, sim::SimTime now) const {
    return !m.static_mapping && now - m.last_refresh > timeout_for(m);
  }
  static void track_tcp(Mapping& m, const sim::Packet& pkt, bool inbound);

  /// Fires a pending scheduled restart (at most one per period boundary,
  /// however much time elapsed). Entry point of every translation call.
  void maybe_restart(sim::SimTime now);

  Mapping* find_out(const OutKey& key, sim::SimTime now);
  Mapping* find_in(netcore::Protocol proto, const netcore::Endpoint& external,
                   sim::SimTime now);
  void erase_mapping(const OutKey& key);

  /// Creates a mapping; returns nullptr on port exhaustion.
  Mapping* create_mapping(const OutKey& key, sim::SimTime now);
  [[nodiscard]] std::size_t pick_pool_index(netcore::Ipv4Address internal_ip);
  /// Allocates an external port on pool_[pool_index]; nullopt if exhausted.
  std::optional<std::uint16_t> allocate_port(std::size_t pool_index,
                                             netcore::Protocol proto,
                                             std::uint16_t internal_port,
                                             netcore::Ipv4Address internal_ip,
                                             sim::SimTime now);
  void note_contact(Mapping& m, const netcore::Endpoint& dst);
  [[nodiscard]] bool passes_filter(const Mapping& m,
                                   const netcore::Endpoint& src) const;

  NatConfig config_;
  fault::NatFaults faults_;
  double restart_phase_s_ = 0;
  double pressure_phase_s_ = 0;
  std::int64_t restart_epoch_ = 0;
  CreatedHook on_created_;
  ExpiredHook on_expired_;
  std::vector<netcore::Ipv4Address> pool_;
  flat::FlatMap<netcore::Ipv4Address, std::size_t> pool_index_;
  sim::Rng rng_;
  NatStats stats_;

  // Mapping storage is a chunked slab (stable addresses, 32-bit handles);
  // both translation maps hold handles into it instead of fat values. The
  // outbound path resolves OutKey -> handle -> Mapping; the inbound path
  // resolves InKey -> handle directly — one probe plus a slab deref where
  // it used to chain two full map lookups. Handle values are deterministic
  // (LIFO slot reuse), so mapping behaviour stays byte-reproducible.
  // Iteration that can fire observer hooks always walks `mappings_` (never
  // the slab) so the visit order is identical to the pre-slab layout.
  flat::Arena<Mapping> slab_;
  flat::FlatMap<OutKey, std::uint32_t, OutKeyHash> mappings_;
  flat::FlatMap<InKey, std::uint32_t, InKeyHash> by_external_;

  // Per (pool index, protocol) used ports, as 16-bit-port-space bitmaps.
  std::vector<flat::PortSet> used_ports_udp_;
  std::vector<flat::PortSet> used_ports_tcp_;
  // Sequential allocation cursors per pool index.
  std::vector<std::uint32_t> seq_cursor_;
  // Paired pooling: sticky internal IP -> pool index.
  flat::FlatMap<netcore::Ipv4Address, std::size_t> paired_pool_;
  // chunk_random: sticky internal IP -> (pool index, chunk base).
  flat::FlatMap<netcore::Ipv4Address, std::pair<std::size_t, std::uint16_t>>
      subscriber_chunks_;
  // chunk_random: per pool index, chunk bases already assigned (a chunk base
  // index always fits in 16 bits, so the port bitmap doubles as a chunk set).
  std::vector<flat::PortSet> chunks_taken_;
};

}  // namespace cgn::nat
