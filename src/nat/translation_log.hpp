// CGN translation logging — the paper's §2 traceability concern made
// concrete. Operators report they are "legally required to be able to map
// flows to subscribers"; with address sharing, that means logging every
// mapping (or, with port chunks, every chunk assignment). This observer
// records mapping lifecycles from a NatDevice and answers the one query
// law enforcement actually brings: who used external IP:port at time T?
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netcore/ipv4.hpp"
#include "sim/clock.hpp"

namespace cgn::nat {

/// One logged translation record.
struct TranslationRecord {
  netcore::Protocol proto = netcore::Protocol::udp;
  netcore::Endpoint internal;  ///< the subscriber side
  netcore::Endpoint external;  ///< the shared public side
  sim::SimTime created_at = 0;
  /// Unset while the mapping is live.
  std::optional<sim::SimTime> expired_at;
};

/// Append-only log of translation events, with the subscriber-attribution
/// query on top. Attach to a NatDevice via set_observer().
class TranslationLog {
 public:
  void on_created(const TranslationRecord& record) {
    // Index the open record by its identity so expiry is O(1) instead of a
    // reverse scan over the (unbounded, append-only) record vector. A NAT
    // never has two live mappings on the same external endpoint, so at most
    // one open record per key exists; insert_or_assign covers the edge of a
    // record whose expiry we never saw (its NAT was destroyed mid-life).
    open_.insert_or_assign(
        OpenKey{record.proto, record.external, record.created_at},
        records_.size());
    records_.push_back(record);
  }
  void on_expired(netcore::Protocol proto, const netcore::Endpoint& external,
                  sim::SimTime created_at, sim::SimTime now) {
    auto it = open_.find(OpenKey{proto, external, created_at});
    if (it == open_.end()) return;
    records_[it->second].expired_at = now;
    open_.erase(it);
  }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const std::vector<TranslationRecord>& records() const noexcept {
    return records_;
  }

  /// The attribution query: which internal endpoint was using
  /// `external` (proto) at time `when`? Returns nullopt when no record
  /// covers the instant — with port-overloading CGNs, exactly the situation
  /// the paper's operators dread.
  [[nodiscard]] std::optional<netcore::Endpoint> attribute(
      netcore::Protocol proto, const netcore::Endpoint& external,
      sim::SimTime when) const {
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
      if (it->proto != proto || it->external != external) continue;
      if (when < it->created_at) continue;
      if (it->expired_at && when > *it->expired_at) continue;
      return it->internal;
    }
    return std::nullopt;
  }

  /// Log volume per subscriber (distinct internal IPs) — the dimensioning
  /// statistic operators size their log retention by.
  [[nodiscard]] double records_per_subscriber() const {
    std::vector<std::uint32_t> ips;
    for (const auto& r : records_) ips.push_back(r.internal.address.value());
    std::sort(ips.begin(), ips.end());
    auto n = static_cast<double>(
        std::unique(ips.begin(), ips.end()) - ips.begin());
    return n == 0 ? 0.0 : static_cast<double>(records_.size()) / n;
  }

 private:
  struct OpenKey {
    netcore::Protocol proto;
    netcore::Endpoint external;
    sim::SimTime created_at;
    bool operator==(const OpenKey&) const = default;
  };
  struct OpenKeyHash {
    std::size_t operator()(const OpenKey& k) const noexcept {
      std::size_t h = std::hash<netcore::Endpoint>{}(k.external);
      h ^= std::hash<sim::SimTime>{}(k.created_at) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
      return h ^ static_cast<std::size_t>(k.proto);
    }
  };

  std::vector<TranslationRecord> records_;
  std::unordered_map<OpenKey, std::size_t, OpenKeyHash> open_;
};

}  // namespace cgn::nat
