// NAT behaviour taxonomy (paper §3) and device configuration.
//
// Every dimension the paper measures in §6 — mapping type (Figure 13), port
// allocation strategy (Figures 8-9, Table 6), pooling (§6.2), mapping
// timeouts (Figure 12), hairpinning (§3, the internal-leak enabler of §4.1)
// — is a configuration knob here, so the measurement side of the
// reproduction observes configured behaviour end-to-end.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/clock.hpp"

namespace cgn::nat {

/// NAT mapping/filtering types, ordered from most restrictive to most
/// permissive (classic RFC 3489 taxonomy, used by the paper for
/// readability despite RFC 4787 discouraging it).
enum class MappingType : std::uint8_t {
  symmetric,                ///< new mapping per (int, dst); only dst may reply
  port_address_restricted,  ///< reply allowed only from contacted IP:port
  address_restricted,       ///< reply allowed from contacted IP, any port
  full_cone,                ///< anybody may send once the mapping exists
};

[[nodiscard]] std::string_view to_string(MappingType t) noexcept;

/// Returns true when `a` is at least as permissive as `b`.
[[nodiscard]] constexpr bool at_least_as_permissive(MappingType a,
                                                    MappingType b) noexcept {
  return static_cast<int>(a) >= static_cast<int>(b);
}

/// External-port selection strategies (paper §6.2, RFC 4787 terminology).
enum class PortAllocation : std::uint8_t {
  preservation,  ///< keep the internal source port when free
  sequential,    ///< next free port in increasing order
  random,        ///< uniform over the configured port range
  chunk_random,  ///< fixed per-subscriber port block, random within it
};

[[nodiscard]] std::string_view to_string(PortAllocation p) noexcept;

/// External-IP selection across a NAT pool (paper §3 "IP Pooling").
enum class Pooling : std::uint8_t {
  paired,    ///< same external IP for all flows of one internal IP
  arbitrary, ///< any pool member per mapping
};

[[nodiscard]] std::string_view to_string(Pooling p) noexcept;

/// Which translation job a NatDevice core performs. The address-family
/// adaptation (v6 parsing, pref64, softwire encap) lives in the cgn::v6
/// wrapper elements; the mode is carried here so profiles, ground truth and
/// introspection can name the deployment flavour uniformly.
enum class TranslatorMode : std::uint8_t {
  nat44,        ///< classic NAT444 CGN (the paper's subject)
  nat64,        ///< RFC 6146 stateful v6->v4 translation (PLAT of 464XLAT)
  dslite_aftr,  ///< RFC 6333 AFTR: NAT44 over a v4-in-v6 softwire
};

[[nodiscard]] std::string_view to_string(TranslatorMode m) noexcept;

/// Full behavioural configuration of one NAT device (CPE or CGN).
struct NatConfig {
  std::string name = "nat";
  MappingType mapping = MappingType::port_address_restricted;
  PortAllocation port_allocation = PortAllocation::preservation;
  Pooling pooling = Pooling::paired;

  /// Idle seconds after which a UDP mapping is discarded (RFC 4787
  /// recommends >= 120 s; the paper measures 10-200 s in the wild).
  sim::SimTime udp_timeout_s = 120.0;
  /// Idle seconds for *established* TCP mappings (RFC 5382 REQ-5
  /// recommends >= 2 h 4 min).
  sim::SimTime tcp_timeout_s = 7200.0;
  /// Idle seconds for transitory TCP states — connections that have not
  /// completed the handshake, or have seen FIN/RST (RFC 5382: >= 4 min).
  sim::SimTime tcp_transitory_timeout_s = 240.0;
  /// Whether inbound (core->edge) traffic refreshes a mapping's timer.
  bool refresh_on_inbound = true;

  /// Whether inside->own-external packets are looped back (RFC 4787 REQ-9).
  bool hairpinning = false;
  /// Misbehaviour observed in the wild (paper §3): on hairpin, leave the
  /// internal source endpoint untranslated, exposing internal addresses to
  /// peers behind the same NAT. This is the mechanism behind BitTorrent
  /// internal-address leakage.
  bool hairpin_preserve_source = false;

  /// External ports are drawn from [port_min, port_max]. CGNs typically use
  /// (almost) the whole space — the Figure 8(a) signal.
  std::uint16_t port_min = 1024;
  std::uint16_t port_max = 65535;

  /// Ports per subscriber block when port_allocation == chunk_random.
  std::uint32_t chunk_size = 4096;
};

}  // namespace cgn::nat
