#include "nat/nat_device.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace cgn::nat {

namespace {
std::size_t mix(std::size_t a, std::size_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}
std::size_t hash_endpoint(const netcore::Endpoint& e) noexcept {
  return std::hash<netcore::Endpoint>{}(e);
}

// Global aggregates across every NAT device in the process (CPEs + CGNs);
// handles resolved once so the translation path pays a relaxed add each.
obs::Counter& g_mappings_created = obs::counter("nat.mappings_created");
obs::Counter& g_mappings_expired = obs::counter("nat.mappings_expired");
obs::Counter& g_outbound_translated = obs::counter("nat.outbound_translated");
obs::Counter& g_inbound_translated = obs::counter("nat.inbound_translated");
obs::Counter& g_inbound_filtered = obs::counter("nat.inbound_filtered");
obs::Counter& g_inbound_no_mapping = obs::counter("nat.inbound_no_mapping");
obs::Counter& g_hairpins_forwarded = obs::counter("nat.hairpins_forwarded");
obs::Counter& g_hairpins_dropped = obs::counter("nat.hairpins_dropped");
obs::Counter& g_port_exhaustion = obs::counter("nat.port_exhaustion_drops");
obs::Counter& g_fault_restarts = obs::counter("nat.fault_restarts");
obs::Counter& g_restart_flushed = obs::counter("nat.fault_restart_flushed");
obs::Counter& g_pressure_drops = obs::counter("nat.fault_pressure_drops");
obs::Gauge& g_active_mappings = obs::gauge("nat.active_mappings");
obs::Gauge& g_ports_in_use = obs::gauge("nat.ports_in_use");
obs::Gauge& g_port_capacity = obs::gauge("nat.port_capacity");

// Derived port-pool pressure, sampled at export time.
[[maybe_unused]] const bool g_probe_registered = [] {
  obs::MetricsRegistry::global().register_probe(
      "nat.port_pool_utilization", [] {
        auto capacity = g_port_capacity.value();
        return capacity == 0 ? 0.0
                             : static_cast<double>(g_ports_in_use.value()) /
                                   static_cast<double>(capacity);
      });
  return true;
}();
}  // namespace

std::string_view to_string(MappingType t) noexcept {
  switch (t) {
    case MappingType::symmetric: return "symmetric";
    case MappingType::port_address_restricted: return "port-address restricted";
    case MappingType::address_restricted: return "address restricted";
    case MappingType::full_cone: return "full cone";
  }
  return "?";
}

std::string_view to_string(PortAllocation p) noexcept {
  switch (p) {
    case PortAllocation::preservation: return "preservation";
    case PortAllocation::sequential: return "sequential";
    case PortAllocation::random: return "random";
    case PortAllocation::chunk_random: return "chunk-random";
  }
  return "?";
}

std::string_view to_string(Pooling p) noexcept {
  switch (p) {
    case Pooling::paired: return "paired";
    case Pooling::arbitrary: return "arbitrary";
  }
  return "?";
}

std::string_view to_string(TranslatorMode m) noexcept {
  switch (m) {
    case TranslatorMode::nat44: return "nat44";
    case TranslatorMode::nat64: return "nat64";
    case TranslatorMode::dslite_aftr: return "dslite-aftr";
  }
  return "?";
}

std::size_t NatDevice::OutKeyHash::operator()(const OutKey& k) const noexcept {
  return mix(mix(hash_endpoint(k.internal), hash_endpoint(k.remote)),
             static_cast<std::size_t>(k.proto));
}

std::size_t NatDevice::InKeyHash::operator()(const InKey& k) const noexcept {
  return mix(hash_endpoint(k.external), static_cast<std::size_t>(k.proto));
}

NatDevice::NatDevice(NatConfig config,
                     std::vector<netcore::Ipv4Address> external_pool,
                     sim::Rng rng)
    : config_(std::move(config)), pool_(std::move(external_pool)),
      rng_(std::move(rng)) {
  if (pool_.empty())
    throw std::invalid_argument(config_.name + ": empty external pool");
  if (config_.port_min > config_.port_max)
    throw std::invalid_argument(config_.name + ": inverted port range");
  if (config_.port_allocation == PortAllocation::chunk_random &&
      config_.chunk_size == 0)
    throw std::invalid_argument(config_.name + ": zero chunk size");
  pool_index_.reserve(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) pool_index_.emplace(pool_[i], i);
  if (pool_index_.size() != pool_.size())
    throw std::invalid_argument(config_.name + ": duplicate pool addresses");
  used_ports_udp_.resize(pool_.size());
  used_ports_tcp_.resize(pool_.size());
  seq_cursor_.assign(pool_.size(), config_.port_min);
  chunks_taken_.resize(pool_.size());
  const std::int64_t ports_per_proto =
      static_cast<std::int64_t>(config_.port_max) - config_.port_min + 1;
  g_port_capacity.add(static_cast<std::int64_t>(pool_.size()) *
                      ports_per_proto * 2);
}

NatDevice::~NatDevice() {
  std::int64_t ports = 0;
  for (const auto& used : used_ports_udp_) ports += used.size();
  for (const auto& used : used_ports_tcp_) ports += used.size();
  g_ports_in_use.sub(ports);
  g_active_mappings.sub(static_cast<std::int64_t>(mappings_.size()));
  const std::int64_t ports_per_proto =
      static_cast<std::int64_t>(config_.port_max) - config_.port_min + 1;
  g_port_capacity.sub(static_cast<std::int64_t>(pool_.size()) *
                      ports_per_proto * 2);
}

bool NatDevice::owns_external(netcore::Ipv4Address a) const {
  return pool_index_.contains(a);
}

void NatDevice::set_fault_profile(const fault::NatFaults& faults,
                                  double restart_phase_s,
                                  double pressure_phase_s) {
  faults_ = faults;
  restart_phase_s_ = restart_phase_s;
  pressure_phase_s_ = pressure_phase_s;
  restart_epoch_ = 0;
}

void NatDevice::maybe_restart(sim::SimTime now) {
  if (faults_.restart_period_s <= 0) return;
  const double t = now - restart_phase_s_;
  const auto epoch =
      t <= 0 ? std::int64_t{0}
             : static_cast<std::int64_t>(t / faults_.restart_period_s);
  if (epoch <= restart_epoch_) return;
  // Collapse any number of missed boundaries into one flush: a device that
  // rebooted twice while idle looks, at the next packet, exactly like one
  // that rebooted once.
  restart_epoch_ = epoch;
  reset_state(now);
}

void NatDevice::reset_state(sim::SimTime now) {
  // Close every live record in the operator's translation log before the
  // state vanishes; a real syslog-based TranslationLog would see the same
  // burst of teardown records when a CGN reboots.
  if (on_expired_)
    for (const auto& [key, h] : mappings_) {
      const Mapping& m = slab_[h];
      on_expired_(key.proto, m.external, m.created_at, now);
    }
  ++stats_.restarts;
  g_fault_restarts.inc();
  stats_.restart_flushed_mappings += mappings_.size();
  g_restart_flushed.inc(mappings_.size());

  g_active_mappings.sub(static_cast<std::int64_t>(mappings_.size()));
  std::int64_t ports = 0;
  for (const auto& used : used_ports_udp_) ports += used.size();
  for (const auto& used : used_ports_tcp_) ports += used.size();
  g_ports_in_use.sub(ports);

  mappings_.clear();
  by_external_.clear();
  slab_.clear();
  for (auto& used : used_ports_udp_) used.clear();
  for (auto& used : used_ports_tcp_) used.clear();
  seq_cursor_.assign(pool_.size(), config_.port_min);
  paired_pool_.clear();
  subscriber_chunks_.clear();
  for (auto& taken : chunks_taken_) taken.clear();
}

bool NatDevice::pressure_active(sim::SimTime now) const {
  if (faults_.pressure_period_s <= 0 || faults_.pressure_duration_s <= 0)
    return false;
  const double t = now - pressure_phase_s_;
  if (t < 0) return false;
  return std::fmod(t, faults_.pressure_period_s) <
         faults_.pressure_duration_s;
}

void NatDevice::note_contact(Mapping& m, const netcore::Endpoint& dst) {
  switch (config_.mapping) {
    case MappingType::address_restricted:
      m.contacted_addresses.insert(dst.address);
      break;
    case MappingType::port_address_restricted:
      m.contacted_endpoints.insert(dst);
      break;
    case MappingType::full_cone:
    case MappingType::symmetric:
      break;  // full cone filters nothing; symmetric pins key.remote
  }
}

bool NatDevice::passes_filter(const Mapping& m,
                              const netcore::Endpoint& src) const {
  if (m.static_mapping) return true;
  switch (config_.mapping) {
    case MappingType::full_cone: return true;
    case MappingType::address_restricted:
      return m.contacted_addresses.contains(src.address);
    case MappingType::port_address_restricted:
      return m.contacted_endpoints.contains(src);
    case MappingType::symmetric: return src == m.key.remote;
  }
  return false;
}

void NatDevice::erase_mapping(const OutKey& key) {
  auto it = mappings_.find(key);
  if (it == mappings_.end()) return;
  const std::uint32_t h = it->second;
  const Mapping& m = slab_[h];
  if (on_expired_)
    on_expired_(key.proto, m.external, m.created_at,
                m.last_refresh + timeout_for(m));
  by_external_.erase(InKey{key.proto, m.external});
  auto pool_it = pool_index_.find(m.external.address);
  if (pool_it != pool_index_.end()) {
    auto& used = key.proto == netcore::Protocol::udp
                     ? used_ports_udp_[pool_it->second]
                     : used_ports_tcp_[pool_it->second];
    g_ports_in_use.sub(static_cast<std::int64_t>(used.erase(m.external.port)));
  }
  g_active_mappings.sub(1);
  // Key-based erase before the slab slot dies: `key` may alias the stored
  // m.key (find_in passes it), and FlatMap::erase only reads the key during
  // the probe — while the slab object is still alive.
  mappings_.erase(key);
  slab_.erase(h);
}

NatDevice::Mapping* NatDevice::find_out(const OutKey& key, sim::SimTime now) {
  auto it = mappings_.find(key);
  if (it == mappings_.end()) return nullptr;
  Mapping& m = slab_[it->second];
  if (expired(m, now)) {
    ++stats_.mappings_expired;
    g_mappings_expired.inc();
    erase_mapping(key);
    return nullptr;
  }
  return &m;
}

NatDevice::Mapping* NatDevice::find_in(netcore::Protocol proto,
                                       const netcore::Endpoint& external,
                                       sim::SimTime now) {
  // One probe on the inbound path: the external key resolves straight to a
  // slab handle (both maps are kept in sync on every create/erase, so a hit
  // here is always a live slab slot).
  auto it = by_external_.find(InKey{proto, external});
  if (it == by_external_.end()) return nullptr;
  Mapping& m = slab_[it->second];
  if (expired(m, now)) {
    ++stats_.mappings_expired;
    g_mappings_expired.inc();
    erase_mapping(m.key);
    return nullptr;
  }
  return &m;
}

std::size_t NatDevice::pick_pool_index(netcore::Ipv4Address internal_ip) {
  if (config_.pooling == Pooling::paired) {
    auto [it, inserted] = paired_pool_.try_emplace(internal_ip, 0);
    if (inserted) it->second = rng_.index(pool_.size());
    return it->second;
  }
  return rng_.index(pool_.size());
}

std::optional<std::uint16_t> NatDevice::allocate_port(
    std::size_t pool_index, netcore::Protocol proto,
    std::uint16_t internal_port, netcore::Ipv4Address internal_ip,
    sim::SimTime now) {
  auto& used = proto == netcore::Protocol::udp ? used_ports_udp_[pool_index]
                                               : used_ports_tcp_[pool_index];
  const std::uint32_t lo = config_.port_min;
  std::uint32_t hi = config_.port_max;
  // During a pressure window the top reserve share of the range is blocked
  // (operator maintenance holding ports back); outside windows hi is the
  // configured maximum and the code below behaves exactly as before.
  if (pressure_active(now)) {
    const auto usable = static_cast<std::uint32_t>(
        (1.0 - faults_.pressure_reserve_fraction) *
        static_cast<double>(hi - lo + 1));
    if (usable == 0) return std::nullopt;
    hi = lo + usable - 1;
  }
  const std::uint32_t range = hi - lo + 1;

  auto seq_scan = [&](std::uint32_t start) -> std::optional<std::uint16_t> {
    for (std::uint32_t i = 0; i < range; ++i) {
      std::uint32_t p = lo + (start - lo + i) % range;
      if (!used.contains(static_cast<std::uint16_t>(p)))
        return static_cast<std::uint16_t>(p);
    }
    return std::nullopt;
  };

  switch (config_.port_allocation) {
    case PortAllocation::preservation: {
      if (internal_port >= lo && internal_port <= hi &&
          !used.contains(internal_port))
        return internal_port;
      // Collision (or out of range): fall back to the next free port.
      std::uint32_t start = internal_port >= lo && internal_port <= hi
                                ? internal_port + 1u
                                : lo;
      if (start > hi) start = lo;
      return seq_scan(start);
    }
    case PortAllocation::sequential: {
      std::uint32_t cursor = seq_cursor_[pool_index];
      if (cursor > hi) cursor = lo;  // cursor parked in the blocked share
      auto port = seq_scan(cursor);
      if (port) {
        std::uint32_t next = static_cast<std::uint32_t>(*port) + 1;
        seq_cursor_[pool_index] = next > hi ? lo : next;
      }
      return port;
    }
    case PortAllocation::random: {
      for (int attempt = 0; attempt < 32; ++attempt) {
        auto p = static_cast<std::uint16_t>(rng_.uniform(lo, hi));
        if (!used.contains(p)) return p;
      }
      return seq_scan(lo + static_cast<std::uint32_t>(rng_.index(range)));
    }
    case PortAllocation::chunk_random: {
      auto chunk_it = subscriber_chunks_.find(internal_ip);
      if (chunk_it == subscriber_chunks_.end()) return std::nullopt;
      auto [idx, base] = chunk_it->second;
      (void)idx;
      const std::uint32_t cs = config_.chunk_size;
      for (int attempt = 0; attempt < 32; ++attempt) {
        auto p = static_cast<std::uint16_t>(base + rng_.index(cs));
        if (p <= hi && !used.contains(p)) return p;
      }
      for (std::uint32_t i = 0; i < cs; ++i) {
        auto p = static_cast<std::uint16_t>(base + i);
        if (p <= hi && !used.contains(p)) return p;
      }
      return std::nullopt;  // the subscriber's chunk is exhausted
    }
  }
  return std::nullopt;
}

NatDevice::Mapping* NatDevice::create_mapping(const OutKey& key,
                                              sim::SimTime now) {
  const netcore::Ipv4Address internal_ip = key.internal.address;
  std::size_t pool_idx = 0;
  std::optional<std::uint16_t> port;

  if (config_.port_allocation == PortAllocation::chunk_random) {
    // The subscriber's chunk (and with it the external IP) is sticky.
    auto it = subscriber_chunks_.find(internal_ip);
    if (it == subscriber_chunks_.end()) {
      const std::uint32_t cs = config_.chunk_size;
      const std::uint16_t first_chunk =
          static_cast<std::uint16_t>((config_.port_min + cs - 1) / cs);
      const std::uint16_t last_chunk =
          static_cast<std::uint16_t>((std::uint32_t{config_.port_max} + 1) / cs -
                                     1);
      if (first_chunk > last_chunk) {
        ++stats_.port_exhaustion_drops;
        g_port_exhaustion.inc();
        return nullptr;
      }
      // Try pool members (starting with the paired choice) for a free chunk.
      const std::size_t start = pick_pool_index(internal_ip);
      const std::size_t chunk_count =
          std::size_t{last_chunk} - first_chunk + 1;
      for (std::size_t off = 0; off < pool_.size() && !port; ++off) {
        const std::size_t candidate = (start + off) % pool_.size();
        auto& taken = chunks_taken_[candidate];
        if (taken.size() >= chunk_count) continue;
        // Random probes model the operator's randomized chunk placement;
        // near full occupancy all 64 can collide with taken chunks, so
        // fall back to a deterministic scan — the size check above
        // guarantees it finds a free chunk, never a false exhaustion.
        std::optional<std::uint16_t> chunk;
        for (int attempt = 0; attempt < 64 && !chunk; ++attempt) {
          auto c = static_cast<std::uint16_t>(
              rng_.uniform(first_chunk, last_chunk));
          if (!taken.contains(c)) chunk = c;
        }
        for (std::uint32_t c = first_chunk; c <= last_chunk && !chunk; ++c)
          if (!taken.contains(static_cast<std::uint16_t>(c)))
            chunk = static_cast<std::uint16_t>(c);
        if (!chunk) continue;
        // Commit the (pool index, chunk base) pair transactionally: if no
        // port comes out of this pool member, release the chunk and drop
        // the subscriber entry before trying the next member, so the
        // stored pair always matches the ports actually allocated.
        taken.insert(*chunk);
        it = subscriber_chunks_
                 .emplace(internal_ip,
                          std::make_pair(candidate, static_cast<std::uint16_t>(
                                                        *chunk * cs)))
                 .first;
        port = allocate_port(candidate, key.proto, key.internal.port,
                             internal_ip, now);
        if (port) {
          pool_idx = candidate;
        } else {
          taken.erase(*chunk);
          subscriber_chunks_.erase(internal_ip);
          it = subscriber_chunks_.end();
        }
      }
      if (it == subscriber_chunks_.end()) {
        ++stats_.port_exhaustion_drops;
        g_port_exhaustion.inc();
        if (pressure_active(now)) {
          ++stats_.pressure_drops;
          g_pressure_drops.inc();
        }
        return nullptr;
      }
    } else {
      pool_idx = it->second.first;
      port = allocate_port(pool_idx, key.proto, key.internal.port, internal_ip,
                           now);
    }
  } else {
    pool_idx = pick_pool_index(internal_ip);
    port = allocate_port(pool_idx, key.proto, key.internal.port, internal_ip,
                         now);
    if (!port && config_.pooling == Pooling::arbitrary) {
      for (std::size_t off = 1; off < pool_.size() && !port; ++off) {
        pool_idx = (pool_idx + 1) % pool_.size();
        port = allocate_port(pool_idx, key.proto, key.internal.port,
                             internal_ip, now);
      }
    }
  }

  if (!port) {
    ++stats_.port_exhaustion_drops;
    g_port_exhaustion.inc();
    if (pressure_active(now)) {
      ++stats_.pressure_drops;
      g_pressure_drops.inc();
    }
    return nullptr;
  }

  auto& used = key.proto == netcore::Protocol::udp ? used_ports_udp_[pool_idx]
                                                   : used_ports_tcp_[pool_idx];
  used.insert(*port);

  const std::uint32_t h = slab_.emplace();
  Mapping& m = slab_[h];
  m.key = key;
  m.external = netcore::Endpoint{pool_[pool_idx], *port};
  m.created_at = now;
  m.last_refresh = now;
  mappings_.emplace(key, h);
  by_external_.emplace(InKey{key.proto, m.external}, h);
  ++stats_.mappings_created;
  g_mappings_created.inc();
  g_active_mappings.add(1);
  g_ports_in_use.add(1);
  if (on_created_) on_created_(key.proto, key.internal, m.external, now);
  return &m;
}

void NatDevice::track_tcp(Mapping& m, const sim::Packet& pkt, bool inbound) {
  if (pkt.proto != netcore::Protocol::tcp) return;
  switch (pkt.tcp_flag) {
    case sim::TcpFlag::syn:
      // (Re-)handshake: stay/return to transitory until traffic flows both
      // ways.
      if (!inbound) m.tcp_state = TcpState::transitory;
      break;
    case sim::TcpFlag::fin:
    case sim::TcpFlag::rst:
      // Closing: drop to the short transitory timer (RFC 5382 REQ-5).
      m.tcp_state = TcpState::transitory;
      break;
    case sim::TcpFlag::none:
      // Data in either direction implies the handshake completed.
      m.tcp_state = TcpState::established;
      break;
  }
}

sim::Middlebox::Verdict NatDevice::process_outbound(sim::Packet& pkt,
                                                    sim::SimTime now) {
  maybe_restart(now);
  OutKey key{pkt.proto, pkt.src,
             config_.mapping == MappingType::symmetric ? pkt.dst
                                                       : netcore::Endpoint{}};
  Mapping* m = find_out(key, now);
  if (!m) {
    m = create_mapping(key, now);
    if (!m) return Verdict::drop_other;
  }
  m->last_refresh = now;
  note_contact(*m, pkt.dst);
  track_tcp(*m, pkt, /*inbound=*/false);
  pkt.src = m->external;
  ++stats_.outbound_translated;
  g_outbound_translated.inc();
  return Verdict::forward;
}

sim::Middlebox::Verdict NatDevice::process_inbound(sim::Packet& pkt,
                                                   sim::SimTime now) {
  maybe_restart(now);
  Mapping* m = find_in(pkt.proto, pkt.dst, now);
  if (!m) {
    ++stats_.inbound_no_mapping;
    g_inbound_no_mapping.inc();
    return Verdict::drop_no_mapping;
  }
  if (!passes_filter(*m, pkt.src)) {
    ++stats_.inbound_filtered;
    g_inbound_filtered.inc();
    return Verdict::drop_filtered;
  }
  if (config_.refresh_on_inbound) m->last_refresh = now;
  track_tcp(*m, pkt, /*inbound=*/true);
  pkt.dst = m->key.internal;
  ++stats_.inbound_translated;
  g_inbound_translated.inc();
  return Verdict::forward;
}

sim::Middlebox::Verdict NatDevice::process_hairpin(sim::Packet& pkt,
                                                   sim::SimTime now) {
  if (!config_.hairpinning) {
    ++stats_.hairpins_dropped;
    g_hairpins_dropped.inc();
    return Verdict::drop_other;
  }
  if (!config_.hairpin_preserve_source) {
    // Correct RFC 4787 behaviour: the looped packet carries the sender's
    // *external* endpoint, so internal addresses stay hidden.
    auto v = process_outbound(pkt, now);
    if (v != Verdict::forward) {
      ++stats_.hairpins_dropped;
    g_hairpins_dropped.inc();
      return v;
    }
  }
  auto v = process_inbound(pkt, now);
  if (v != Verdict::forward) {
    ++stats_.hairpins_dropped;
    g_hairpins_dropped.inc();
    return v;
  }
  ++stats_.hairpins_forwarded;
  g_hairpins_forwarded.inc();
  return Verdict::forward;
}

std::optional<netcore::Endpoint> NatDevice::lookup_external(
    netcore::Protocol proto, const netcore::Endpoint& internal,
    const netcore::Endpoint& remote, sim::SimTime now) const {
  OutKey key{proto, internal,
             config_.mapping == MappingType::symmetric ? remote
                                                       : netcore::Endpoint{}};
  auto it = mappings_.find(key);
  if (it == mappings_.end() || expired(slab_[it->second], now))
    return std::nullopt;
  return slab_[it->second].external;
}

std::size_t NatDevice::active_mappings(sim::SimTime now) const {
  return static_cast<std::size_t>(std::count_if(
      mappings_.begin(), mappings_.end(),
      [&](const auto& kv) { return !expired(slab_[kv.second], now); }));
}

void NatDevice::collect_garbage(sim::SimTime now) {
  std::vector<OutKey> dead;
  for (const auto& [key, h] : mappings_)
    if (expired(slab_[h], now)) dead.push_back(key);
  stats_.mappings_expired += dead.size();
  g_mappings_expired.inc(dead.size());
  for (const auto& key : dead) erase_mapping(key);
}

std::optional<netcore::Endpoint> NatDevice::add_static_mapping(
    netcore::Protocol proto, const netcore::Endpoint& internal,
    sim::SimTime now) {
  maybe_restart(now);
  // Static mappings are endpoint-independent by definition, so the key uses
  // the zero remote even on an otherwise-symmetric NAT.
  OutKey key{proto, internal, netcore::Endpoint{}};
  if (Mapping* existing = find_out(key, now)) {
    existing->static_mapping = true;
    return existing->external;
  }
  Mapping* m = create_mapping(key, now);
  if (!m) return std::nullopt;
  m->static_mapping = true;
  m->last_refresh = now;
  return m->external;
}

bool NatDevice::renumber_external(netcore::Ipv4Address old_address,
                                  netcore::Ipv4Address new_address) {
  auto it = pool_index_.find(old_address);
  if (it == pool_index_.end() || pool_index_.contains(new_address))
    return false;
  const std::size_t idx = it->second;

  // Drop every mapping bound to the old address (flows break).
  std::vector<OutKey> dead;
  for (const auto& [key, h] : mappings_)
    if (slab_[h].external.address == old_address) dead.push_back(key);
  for (const auto& key : dead) erase_mapping(key);
  stats_.mappings_expired += dead.size();
  g_mappings_expired.inc(dead.size());

  pool_[idx] = new_address;
  pool_index_.erase(old_address);
  pool_index_.emplace(new_address, idx);
  return true;
}

std::optional<std::pair<std::uint16_t, std::uint32_t>>
NatDevice::subscriber_chunk(netcore::Ipv4Address internal_ip) const {
  auto it = subscriber_chunks_.find(internal_ip);
  if (it == subscriber_chunks_.end()) return std::nullopt;
  return std::make_pair(it->second.second, config_.chunk_size);
}

}  // namespace cgn::nat
