// Shard-granular campaign checkpoints.
//
// A checkpoint file is an append-only log: a versioned header identifying
// the campaign (kind, world seed, fault-plan hash, shard count, payload
// version) followed by one record per completed shard. Writers flush after
// every record, so a campaign killed at any instant leaves a valid prefix;
// loaders verify a per-record FNV-1a checksum and stop at the first
// truncated or corrupt record. A resumed campaign loads the surviving
// records, skips those shards, and appends the rest to the same file.
//
// The header key guards against resuming into the wrong world: any
// mismatch (different seed, plan, shard decomposition or payload schema)
// makes the loader return nothing and the writer start the file over.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cgn::super {

/// File format revision (bumped when the container layout changes).
inline constexpr std::uint32_t kCheckpointFileVersion = 1;

/// Identity of one checkpointable campaign. Two runs may share a
/// checkpoint file iff every field matches.
struct CheckpointKey {
  std::string kind;               ///< e.g. "netalyzr", "crawl_ping"
  std::uint64_t world_seed = 0;   ///< InternetConfig::seed
  std::uint64_t plan_hash = 0;    ///< FaultPlan::hash()
  std::uint64_t shard_count = 0;  ///< campaign shard decomposition size
  /// Payload schema version (bumped when a shard codec changes shape).
  std::uint64_t payload_version = 1;

  bool operator==(const CheckpointKey&) const = default;
};

/// Loads every valid record of `path` whose header matches `key`:
/// shard index -> payload bytes (last record wins if a shard repeats).
/// A missing file, foreign/corrupt header or key mismatch loads nothing;
/// a corrupt or truncated tail keeps the valid prefix.
[[nodiscard]] std::unordered_map<std::uint64_t, std::string> load_checkpoint(
    const std::string& path, const CheckpointKey& key);

/// Appends completed-shard records to a checkpoint file. Thread-safe:
/// campaign workers append concurrently, each record is written atomically
/// under a lock and flushed before append() returns.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Opens `path` for appending. When the file already carries a matching
  /// header the existing records are kept (resume); otherwise the file is
  /// truncated and a fresh header written.
  void open(const std::string& path, const CheckpointKey& key);

  [[nodiscard]] bool is_open() const noexcept { return os_.is_open(); }

  /// Appends one shard record (locked + flushed).
  void append(std::uint64_t shard, std::string_view payload);

 private:
  std::mutex mu_;
  std::ofstream os_;
};

}  // namespace cgn::super
