#include "super/supervisor.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"
#include "super/checkpoint.hpp"

namespace cgn::super {

namespace {

obs::Counter& g_planned = obs::counter("super.shards_planned");
obs::Counter& g_ok = obs::counter("super.shards_ok");
obs::Counter& g_retried = obs::counter("super.shards_retried");
obs::Counter& g_quarantined = obs::counter("super.shards_quarantined");
obs::Counter& g_deadline_aborts = obs::counter("super.deadline_aborts");
obs::Counter& g_resumed = obs::counter("super.shards_resumed");
obs::Counter& g_not_run = obs::counter("super.shards_not_run");
obs::Counter& g_retry_attempts = obs::counter("super.retry_attempts");
obs::Counter& g_ckpt_written = obs::counter("super.checkpoint_shards_written");
obs::Counter& g_campaign_aborts = obs::counter("super.campaign_aborts");

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

/// An injected worker crash (fault::ShardFaults). Fired at dispatch,
/// before the shard body runs, so a retry replays a clean substream.
struct ShardCrashError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Wall-clock watchdog shared between the workers and one monitor thread.
/// Workers publish (slot -> attempt start); the monitor flags overruns.
struct Watchdog {
  std::array<std::atomic<std::int64_t>, obs::kMaxThreadSlots> start_us{};
  std::array<std::atomic<bool>, obs::kMaxThreadSlots> cancel{};
  std::atomic<bool> campaign_expired{false};
  std::atomic<bool> stop{false};
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;

  void launch(SteadyClock::time_point t0, double shard_deadline_s,
              double campaign_deadline_s) {
    for (auto& s : start_us) s.store(-1, std::memory_order_relaxed);
    thread = std::thread([this, t0, shard_deadline_s, campaign_deadline_s] {
      std::unique_lock<std::mutex> lock(mu);
      while (!cv.wait_for(lock, std::chrono::milliseconds(2),
                          [this] { return stop.load(); })) {
        const auto now = SteadyClock::now();
        if (campaign_deadline_s > 0 &&
            std::chrono::duration<double>(now - t0).count() >
                campaign_deadline_s)
          campaign_expired.store(true, std::memory_order_relaxed);
        if (shard_deadline_s <= 0) continue;
        const std::int64_t now_us =
            std::chrono::duration_cast<std::chrono::microseconds>(now - t0)
                .count();
        for (std::size_t slot = 0; slot < start_us.size(); ++slot) {
          const std::int64_t began =
              start_us[slot].load(std::memory_order_relaxed);
          if (began >= 0 && static_cast<double>(now_us - began) >
                                shard_deadline_s * 1e6)
            cancel[slot].store(true, std::memory_order_relaxed);
        }
      }
    });
  }

  void shutdown() {
    if (!thread.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
    thread.join();
  }
};

thread_local const std::atomic<bool>* t_cancel_flag = nullptr;

std::string aggregate_failures(const CampaignReport& report) {
  std::vector<std::size_t> failed;
  for (std::size_t s = 0; s < report.shards.size(); ++s)
    if (!report.shards[s].finished()) failed.push_back(s);
  std::ostringstream os;
  os << failed.size() << " of " << report.shards.size()
     << " shards failed: ";
  constexpr std::size_t kMaxDetail = 4;
  for (std::size_t i = 0; i < failed.size() && i < kMaxDetail; ++i) {
    const ShardOutcome& o = report.shards[failed[i]];
    if (i > 0) os << "; ";
    os << "shard " << failed[i] << " [" << to_string(o.status)
       << "]: " << (o.error.empty() ? "no error recorded" : o.error);
  }
  if (failed.size() > kMaxDetail)
    os << "; (+" << failed.size() - kMaxDetail << " more)";
  return std::move(os).str();
}

}  // namespace

std::string_view to_string(ShardStatus s) noexcept {
  switch (s) {
    case ShardStatus::not_run: return "not_run";
    case ShardStatus::completed: return "completed";
    case ShardStatus::recovered: return "recovered";
    case ShardStatus::resumed: return "resumed";
    case ShardStatus::quarantined: return "quarantined";
    case ShardStatus::deadline_aborted: return "deadline_aborted";
  }
  return "unknown";
}

std::string CampaignReport::describe() const {
  std::ostringstream os;
  os << shards.size() << " shards: " << count(ShardStatus::completed)
     << " ok, " << count(ShardStatus::recovered) << " retried, "
     << count(ShardStatus::resumed) << " resumed, "
     << count(ShardStatus::quarantined) << " quarantined, "
     << count(ShardStatus::deadline_aborted) << " deadline-aborted, "
     << count(ShardStatus::not_run) << " not run";
  return std::move(os).str();
}

bool ShardSupervisor::cancel_requested() noexcept {
  return t_cancel_flag != nullptr &&
         t_cancel_flag->load(std::memory_order_relaxed);
}

CampaignReport ShardSupervisor::run(
    std::size_t shard_count, const std::function<void(std::size_t)>& shard_fn,
    const ShardCodec* codec, std::size_t threads) {
  CampaignReport report;
  report.shards.resize(shard_count);
  if (shard_count == 0) return report;
  g_planned.inc(shard_count);

  // Checkpoint state: completed-shard payloads from a previous run, and a
  // writer that appends this run's completions to the same file.
  std::unordered_map<std::uint64_t, std::string> restored;
  CheckpointWriter writer;
  if (!config_.checkpoint_path.empty()) {
    const CheckpointKey key{config_.campaign_kind, config_.world_seed,
                            config_.plan_hash, shard_count,
                            config_.payload_version};
    restored = load_checkpoint(config_.checkpoint_path, key);
    writer.open(config_.checkpoint_path, key);
  }

  const int budget = std::max(1, config_.max_attempts);
  const auto t0 = SteadyClock::now();
  Watchdog watchdog;
  const bool watched =
      config_.shard_deadline_s > 0 || config_.campaign_deadline_s > 0;
  if (watched)
    watchdog.launch(t0, config_.shard_deadline_s,
                    config_.campaign_deadline_s);

  std::atomic<std::size_t> finished_this_run{0};
  std::atomic<bool> aborting{false};

  par::run_shards(
      shard_count,
      [&](std::size_t s) {
        ShardOutcome& out = report.shards[s];
        const auto shard_t0 = SteadyClock::now();

        // Resume: restore the shard from its checkpoint record instead of
        // re-running it. A payload the codec rejects falls through to a
        // normal run.
        if (codec != nullptr && codec->decode) {
          auto it = restored.find(s);
          if (it != restored.end() && codec->decode(s, it->second)) {
            out.status = ShardStatus::resumed;
            g_resumed.inc();
            return;
          }
        }

        const std::size_t slot = obs::thread_slot();
        for (int attempt = 1; attempt <= budget; ++attempt) {
          if (aborting.load(std::memory_order_relaxed) ||
              watchdog.campaign_expired.load(std::memory_order_relaxed)) {
            out.status = ShardStatus::not_run;
            out.error = aborting ? "campaign aborted"
                                 : "campaign deadline exceeded";
            out.elapsed_s = seconds_since(shard_t0);
            g_not_run.inc();
            return;
          }
          out.attempts = attempt;
          if (attempt > 1) g_retry_attempts.inc();

          if (watched) {
            watchdog.cancel[slot].store(false, std::memory_order_relaxed);
            watchdog.start_us[slot].store(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    SteadyClock::now() - t0)
                    .count(),
                std::memory_order_relaxed);
            t_cancel_flag = &watchdog.cancel[slot];
          }
          bool ok = false;
          try {
            if (config_.faults != nullptr &&
                config_.faults->shard_crash(config_.salt, s, attempt))
              throw ShardCrashError("injected shard crash (attempt " +
                                    std::to_string(attempt) + ")");
            shard_fn(s);
            ok = true;
          } catch (const std::exception& e) {
            out.error = e.what();
          } catch (...) {
            out.error = "unknown exception";
          }
          const bool over_deadline =
              watched &&
              watchdog.cancel[slot].load(std::memory_order_relaxed);
          if (watched) {
            watchdog.start_us[slot].store(-1, std::memory_order_relaxed);
            t_cancel_flag = nullptr;
          }
          out.elapsed_s = seconds_since(shard_t0);

          if (over_deadline) {
            // A shard past its deadline is dropped even if it eventually
            // finished: its results arrived after the SLA and retrying
            // would only blow the budget again.
            out.status = ShardStatus::deadline_aborted;
            if (out.error.empty()) out.error = "shard deadline exceeded";
            g_deadline_aborts.inc();
            return;
          }
          if (ok) {
            out.status = attempt == 1 ? ShardStatus::completed
                                      : ShardStatus::recovered;
            (attempt == 1 ? g_ok : g_retried).inc();
            if (writer.is_open() && codec != nullptr && codec->encode) {
              writer.append(s, codec->encode(s));
              g_ckpt_written.inc();
            }
            const std::size_t done =
                finished_this_run.fetch_add(1, std::memory_order_relaxed) + 1;
            if (config_.abort_after_shards > 0 &&
                done >= config_.abort_after_shards)
              aborting.store(true, std::memory_order_relaxed);
            return;
          }
        }
        out.status = ShardStatus::quarantined;
        g_quarantined.inc();
      },
      threads);

  if (watched) watchdog.shutdown();

  if (aborting.load()) {
    g_campaign_aborts.inc();
    throw CampaignAborted(
        "campaign '" + config_.campaign_kind + "' aborted after " +
        std::to_string(finished_this_run.load()) + " finished shards (" +
        report.describe() + ")");
  }
  if (!config_.quarantine && report.degraded())
    throw std::runtime_error("supervised campaign '" + config_.campaign_kind +
                             "' failed: " + aggregate_failures(report));
  return report;
}

}  // namespace cgn::super
