// Supervised campaign execution over cgn::par.
//
// par::run_shards is all-or-nothing: one throwing shard kills the whole
// campaign after the barrier, and hours of simulated crawling die with it.
// ShardSupervisor layers the recovery semantics long-running measurement
// campaigns need (the paper's DHT crawls ran for months; Netalyzr collected
// sessions for years) without touching the determinism contract:
//
//  * Per-shard attempt budget. A failed shard is re-run up to max_attempts
//    times. Because every campaign shard derives its randomness from a
//    static Rng::fork(seed, shard) substream and runs on a private clock
//    re-based at the campaign start, a retry replays the shard from scratch
//    bit-identically — retries are idempotent by construction.
//  * Quarantine. A shard that exhausts its budget is *quarantined*: its
//    results are dropped, the campaign completes with degraded coverage,
//    and the CampaignReport says exactly which shards are missing and why.
//    (quarantine = false restores all-or-nothing: the supervisor rethrows
//    an aggregate error instead.)
//  * Watchdog deadlines. Optional wall-clock budgets per shard and for the
//    whole campaign. A watchdog thread flags overruns; shard bodies may
//    poll ShardSupervisor::cancel_requested() to bail out cooperatively,
//    and any shard that finishes past its deadline is classified
//    deadline_aborted and dropped like a quarantined one. Deadlines are
//    off by default — they trade determinism for liveness, so only
//    operators opt in.
//  * Checkpoint/resume. With a checkpoint_path, each finished shard's
//    results are serialized through the caller's ShardCodec and appended
//    to a versioned checkpoint file (see checkpoint.hpp). A resumed
//    campaign restores those shards instead of re-running them; since
//    shard substreams are independent, the merged results are byte-
//    identical to an uninterrupted run at any worker count.
//
// Injected shard crashes (fault::ShardFaults) fire at attempt dispatch,
// before the shard body runs — modelling a worker process dying with its
// shard — drawn from fork(plan.seed ^ salt, shard) substreams keyed by
// attempt, so crash patterns are thread-count invariant and a retry under
// the same plan can deterministically succeed.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"

namespace cgn::super {

enum class ShardStatus : std::uint8_t {
  not_run,           ///< never dispatched (campaign abort or deadline)
  completed,         ///< first attempt succeeded
  recovered,         ///< succeeded after at least one failed attempt
  resumed,           ///< restored from a checkpoint, not re-run
  quarantined,       ///< attempt budget exhausted; results dropped
  deadline_aborted,  ///< shard/campaign watchdog deadline hit; dropped
};

[[nodiscard]] std::string_view to_string(ShardStatus s) noexcept;

struct ShardOutcome {
  ShardStatus status = ShardStatus::not_run;
  int attempts = 0;        ///< attempts actually dispatched (0 when resumed)
  double elapsed_s = 0.0;  ///< wall clock across all attempts
  std::string error;       ///< what() of the last failed attempt

  /// True when this shard's results are present in the campaign output.
  [[nodiscard]] bool finished() const noexcept {
    return status == ShardStatus::completed ||
           status == ShardStatus::recovered || status == ShardStatus::resumed;
  }
};

/// Structured result of one supervised campaign: per-shard status plus
/// rollups. The campaign drivers hand this to analysis/bench so degraded
/// coverage is visible instead of silent.
struct CampaignReport {
  std::vector<ShardOutcome> shards;

  [[nodiscard]] std::size_t count(ShardStatus s) const noexcept {
    std::size_t n = 0;
    for (const ShardOutcome& o : shards) n += o.status == s ? 1 : 0;
    return n;
  }
  [[nodiscard]] std::size_t planned() const noexcept { return shards.size(); }
  [[nodiscard]] std::size_t finished() const noexcept {
    std::size_t n = 0;
    for (const ShardOutcome& o : shards) n += o.finished() ? 1 : 0;
    return n;
  }
  /// Fraction of planned shards whose results made it into the output
  /// (1.0 for an empty campaign).
  [[nodiscard]] double coverage() const noexcept {
    return shards.empty() ? 1.0
                          : static_cast<double>(finished()) /
                                static_cast<double>(shards.size());
  }
  [[nodiscard]] bool degraded() const noexcept {
    return finished() < shards.size();
  }
  [[nodiscard]] int total_attempts() const noexcept {
    int n = 0;
    for (const ShardOutcome& o : shards) n += o.attempts;
    return n;
  }
  /// One-line summary ("12 shards: 10 ok, 1 retried, 1 quarantined, ...").
  [[nodiscard]] std::string describe() const;
};

/// Thrown when the campaign is aborted as a whole (currently only by the
/// abort_after_shards kill-switch used to exercise checkpoint recovery).
class CampaignAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SupervisorConfig {
  /// Total attempts per shard (1 = no retry, the historical behaviour).
  int max_attempts = 1;
  /// Wall-clock budget per shard attempt; 0 disables the shard watchdog.
  /// Nondeterministic by nature — results depend on host speed.
  double shard_deadline_s = 0.0;
  /// Wall-clock budget for the whole campaign; 0 disables. Once exceeded,
  /// no further shards are dispatched (marked not_run).
  double campaign_deadline_s = 0.0;
  /// true: exhausted/aborted shards are dropped and reported (default).
  /// false: the supervisor rethrows an aggregate error after the barrier.
  bool quarantine = true;

  /// Checkpoint file; empty disables checkpoint/resume.
  std::string checkpoint_path;

  /// Campaign identity for the checkpoint header — drivers fill these.
  std::string campaign_kind = "campaign";
  std::uint64_t world_seed = 0;
  std::uint64_t plan_hash = 0;
  std::uint64_t payload_version = 1;

  /// Test/ops kill-switch: once this many shards finished *in this run*
  /// (checkpointed if a path is set), stop dispatching and throw
  /// CampaignAborted after the barrier — simulating a campaign killed
  /// mid-flight at a checkpoint boundary. 0 disables.
  std::size_t abort_after_shards = 0;

  /// Source of injected shard crashes (may be null). The supervisor asks
  /// faults->shard_crash(salt, shard, attempt) at each dispatch.
  const fault::FaultInjector* faults = nullptr;
  std::uint64_t salt = 0;  ///< campaign salt for the crash substreams
};

/// Optional per-shard serialization hooks. encode runs after a shard
/// finishes (only when checkpointing is enabled); decode restores a shard
/// from checkpoint bytes, returning false to force a re-run (corrupt or
/// stale payload).
struct ShardCodec {
  std::function<std::string(std::size_t shard)> encode;
  std::function<bool(std::size_t shard, std::string_view payload)> decode;
};

class ShardSupervisor {
 public:
  explicit ShardSupervisor(SupervisorConfig config)
      : config_(std::move(config)) {}

  /// Runs `shard_fn(shard)` for every shard under the configured
  /// supervision and returns the per-shard report. Threads semantics match
  /// par::run_shards (0 = CGN_THREADS). shard_fn must be a pure function
  /// of the shard index with respect to campaign results — that is what
  /// makes retries idempotent and resumes exact.
  CampaignReport run(std::size_t shard_count,
                     const std::function<void(std::size_t)>& shard_fn,
                     const ShardCodec* codec = nullptr,
                     std::size_t threads = 0);

  /// True when the watchdog asked the calling shard to stop (cooperative
  /// cancellation for long-running shard bodies). Always false outside a
  /// supervised shard or when no shard deadline is configured.
  [[nodiscard]] static bool cancel_requested() noexcept;

 private:
  SupervisorConfig config_;
};

}  // namespace cgn::super
