#include "super/checkpoint.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "super/wire.hpp"

namespace cgn::super {

namespace {

obs::Counter& g_ckpt_loaded = obs::counter("super.checkpoint_shards_loaded");
obs::Counter& g_ckpt_mismatch = obs::counter("super.checkpoint_key_mismatch");
obs::Counter& g_ckpt_corrupt = obs::counter("super.checkpoint_corrupt_tail");

constexpr char kMagic[8] = {'C', 'G', 'N', 'C', 'K', 'P', 'T', '\n'};

std::string encode_header(const CheckpointKey& key) {
  wire::Writer w;
  w.raw(kMagic, sizeof kMagic);
  w.u32(kCheckpointFileVersion);
  w.str(key.kind);
  w.u64(key.world_seed);
  w.u64(key.plan_hash);
  w.u64(key.shard_count);
  w.u64(key.payload_version);
  return w.take();
}

/// Parses the header at the front of `r`. Returns true and fills `key`
/// only for a well-formed current-version header.
bool decode_header(wire::Reader& r, CheckpointKey& key) {
  std::string_view magic = r.raw(sizeof kMagic);
  if (magic != std::string_view(kMagic, sizeof kMagic)) return false;
  if (r.u32() != kCheckpointFileVersion) return false;
  key.kind = std::string(r.str());
  key.world_seed = r.u64();
  key.plan_hash = r.u64();
  key.shard_count = r.u64();
  key.payload_version = r.u64();
  return r.ok();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

}  // namespace

std::unordered_map<std::uint64_t, std::string> load_checkpoint(
    const std::string& path, const CheckpointKey& key) {
  std::unordered_map<std::uint64_t, std::string> out;
  const std::string bytes = slurp(path);
  if (bytes.empty()) return out;

  wire::Reader r(bytes);
  CheckpointKey on_disk;
  if (!decode_header(r, on_disk) || !(on_disk == key)) {
    g_ckpt_mismatch.inc();
    return out;
  }
  while (r.remaining() > 0) {
    const std::uint64_t shard = r.u64();
    std::string_view payload = r.str();
    const std::uint64_t checksum = r.u64();
    if (!r.ok() || checksum != wire::fnv1a(payload)) {
      // Truncated or corrupt tail (killed mid-write): keep the valid
      // prefix — exactly the shards whose records were fully flushed.
      g_ckpt_corrupt.inc();
      break;
    }
    out[shard] = std::string(payload);
  }
  g_ckpt_loaded.inc(out.size());
  return out;
}

void CheckpointWriter::open(const std::string& path, const CheckpointKey& key) {
  bool resume = false;
  {
    const std::string bytes = slurp(path);
    if (!bytes.empty()) {
      wire::Reader r(bytes);
      CheckpointKey on_disk;
      resume = decode_header(r, on_disk) && on_disk == key;
    }
  }
  if (resume) {
    os_.open(path, std::ios::binary | std::ios::app);
  } else {
    os_.open(path, std::ios::binary | std::ios::trunc);
    if (os_) {
      const std::string header = encode_header(key);
      os_.write(header.data(), static_cast<std::streamsize>(header.size()));
      os_.flush();
    }
  }
}

void CheckpointWriter::append(std::uint64_t shard, std::string_view payload) {
  wire::Writer w;
  w.u64(shard);
  w.str(payload);
  w.u64(wire::fnv1a(payload));
  const std::string record = w.take();

  std::lock_guard<std::mutex> lock(mu_);
  if (!os_) return;
  os_.write(record.data(), static_cast<std::streamsize>(record.size()));
  // Flush per record: a kill between appends must leave a parsable prefix.
  os_.flush();
}

}  // namespace cgn::super
