// Minimal little-endian binary encoding for checkpoint payloads.
//
// Checkpoint records must round-trip results *exactly* (a resumed campaign
// has to be byte-identical to an uninterrupted one), so every field is a
// fixed-width integer or a bit-cast double — no text formatting, no
// locale, no precision loss. Reader is bounds-checked and never throws:
// a truncated or corrupt payload flips ok() to false and every further
// read returns zero, so decoders can parse first and validate once.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace cgn::super::wire {

/// Appends fixed-width little-endian fields to a byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { put_int(v); }
  void u32(std::uint32_t v) { put_int(v); }
  void u64(std::uint64_t v) { put_int(v); }
  void f64(double v) { put_int(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed byte string (u32 length + raw bytes).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void raw(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_int(T v) {
    char out[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i)
      out[i] = static_cast<char>(v >> (8 * i));
    raw(out, sizeof(T));
  }

  std::string buf_;
};

/// Bounds-checked reader over a byte buffer written by Writer.
class Reader {
 public:
  explicit Reader(std::string_view buf) : buf_(buf) {}

  [[nodiscard]] std::uint8_t u8() { return get_int<std::uint8_t>(); }
  [[nodiscard]] std::uint16_t u16() { return get_int<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return get_int<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return get_int<std::uint64_t>(); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] std::string_view str() {
    const std::uint32_t n = u32();
    return raw(n);
  }
  [[nodiscard]] std::string_view raw(std::size_t n) {
    if (!ok_ || buf_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    std::string_view out = buf_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  /// False once any read ran past the end of the buffer.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True when every byte has been consumed (and no read overran).
  [[nodiscard]] bool done() const noexcept { return ok_ && pos_ == buf_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return ok_ ? buf_.size() - pos_ : 0;
  }

 private:
  template <typename T>
  [[nodiscard]] T get_int() {
    std::string_view b = raw(sizeof(T));
    if (b.size() != sizeof(T)) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (T{static_cast<std::uint8_t>(b[i])} << (8 * i)));
    return v;
  }

  std::string_view buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// FNV-1a over a byte string — the per-record checkpoint checksum.
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace cgn::super::wire
