// The Netalyzr measurement server: a public host offering a TCP echo service
// (on a high port unlikely to be proxied, per the paper) and a UDP probe
// service used by the TTL-driven NAT enumeration test. The test driver can
// also transmit keepalives and probes *from* the server toward a client's
// mapped endpoint — Netalyzr controls both ends of every experiment.
#pragma once

#include <array>
#include <cstdint>

#include "flat/flat.hpp"
#include "netalyzr/messages.hpp"
#include "netcore/ipv4.hpp"
#include "obs/metrics.hpp"
#include "sim/network.hpp"

namespace cgn::netalyzr {

class NetalyzrServer {
 public:
  static constexpr std::uint16_t kEchoPort = 55777;
  static constexpr std::uint16_t kUdpPort = 55778;

  NetalyzrServer(sim::NodeId host, netcore::Ipv4Address address)
      : host_(host), address_(address) {}

  /// Registers address and receiver; the host node must hang off the core.
  void install(sim::Network& net);

  /// Registers a second public address for the same host, reachable only by
  /// v4 literal (the Big-NAT battery never resolves it through DNS, so a
  /// v6-only stack has no AAAA for it and literal flows die at the host).
  /// Installed by the builder only in v6-transition worlds.
  void install_literal_address(sim::Network& net, netcore::Ipv4Address a);

  [[nodiscard]] bool has_literal_address() const noexcept {
    return literal_address_.value() != 0;
  }
  [[nodiscard]] netcore::Endpoint literal_echo_endpoint() const noexcept {
    return {literal_address_, kEchoPort};
  }

  [[nodiscard]] netcore::Endpoint echo_endpoint() const noexcept {
    return {address_, kEchoPort};
  }
  [[nodiscard]] netcore::Endpoint udp_endpoint() const noexcept {
    return {address_, kUdpPort};
  }
  [[nodiscard]] sim::NodeId host() const noexcept { return host_; }

  /// The observed (mapped) source endpoint of a UDP flow, if its init
  /// arrived.
  [[nodiscard]] std::optional<netcore::Endpoint> observed_endpoint(
      std::uint64_t flow) const;

  /// Sends a TTL-limited keepalive toward the flow's observed endpoint.
  void send_keepalive(sim::Network& net, std::uint64_t flow, int ttl);

  /// Sends a full-TTL probe toward the flow's observed endpoint; the client
  /// checks receipt. Returns false when the flow is unknown.
  bool send_probe(sim::Network& net, std::uint64_t flow, std::uint64_t seq);

  /// Drops all per-flow state (between sessions).
  void reset() {
    for (auto& stripe : flows_) stripe.clear();
  }

 private:
  void handle(sim::Network& net, const sim::Packet& pkt);
  [[nodiscard]] std::optional<netcore::Endpoint> flow_endpoint(
      std::uint64_t flow) const;
  [[nodiscard]] flat::FlatMap<std::uint64_t, netcore::Endpoint>& flows() {
    return flows_[obs::thread_slot()];
  }
  [[nodiscard]] const flat::FlatMap<std::uint64_t, netcore::Endpoint>& flows()
      const {
    return flows_[obs::thread_slot()];
  }

  sim::NodeId host_;
  netcore::Ipv4Address address_;
  netcore::Ipv4Address literal_address_;  ///< 0.0.0.0 when not installed
  /// Sessions from different campaign shards hit the one public server
  /// concurrently, but flow ids are namespaced per shard and a shard's
  /// sends are synchronous on one worker thread — a flow's UdpInit and
  /// every later lookup happen on the same thread. Striping the table per
  /// metric slot therefore needs no lock and removes the last shared
  /// mutex on the campaign hot path. (A flow registered by shard A is
  /// invisible to shard B, which is exactly the isolation the campaign
  /// already guaranteed by namespacing.)
  std::array<flat::FlatMap<std::uint64_t, netcore::Endpoint>,
             obs::kMaxThreadSlots>
      flows_;
};

}  // namespace cgn::netalyzr
