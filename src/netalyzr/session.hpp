// Results of one Netalyzr measurement session (paper §4.2, §6).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nat/nat_types.hpp"
#include "netcore/as_registry.hpp"
#include "netcore/ipv4.hpp"
#include "stun/stun.hpp"

namespace cgn::netalyzr {

/// One TCP echo flow of the port-translation test.
struct FlowObservation {
  std::uint16_t local_port = 0;     ///< ephemeral port chosen by the device
  netcore::Endpoint observed;       ///< src endpoint the server saw
};

/// One hop's verdict from the TTL-driven NAT enumeration test.
struct NatHopObservation {
  int hop = 0;             ///< distance from the client (client = hop 0)
  bool stateful = false;   ///< mapping expired when starved of keepalives
  /// Measured idle timeout (10 s granularity), when `stateful`.
  std::optional<double> timeout_s;
};

struct TtlEnumResult {
  /// Intermediate hops between client and server.
  int path_hops = 0;
  std::vector<NatHopObservation> hops;
  int experiments = 0;  ///< reachability experiments performed
  [[nodiscard]] bool found_stateful() const noexcept {
    for (const auto& h : hops)
      if (h.stateful) return true;
    return false;
  }
  /// Most distant stateful hop (Figure 11), 0 when none found.
  [[nodiscard]] int most_distant_nat() const noexcept {
    int best = 0;
    for (const auto& h : hops)
      if (h.stateful) best = std::max(best, h.hop);
    return best;
  }
};

/// Results of the Big-NAT transition battery ("Tracking the Big NAT"
/// methodology): pref64 discovery through the carrier resolver, a literal
/// v4 reachability probe (no DNS), and a coarse translator-timeout sweep.
/// Everything here is measured from the client side — no ground truth.
struct TransitionObservation {
  bool pref64_detected = false;  ///< DNS64 synthesized the IPv4-only anchors
  int pref64_length = 0;         ///< discovered RFC 6052 length, 0 if none
  bool literal_v4_ok = false;    ///< echo to a never-resolved v4 literal
  /// Idle seconds after which the path's translator dropped the mapping
  /// (granularity-bounded); unset when the sweep never saw an expiry.
  std::optional<double> translator_timeout_s;
};

/// Aggregated outcome of a full Netalyzr session.
struct SessionResult {
  netcore::Asn asn = 0;
  bool cellular = false;
  /// Ground-truth stamps of the vantage line (facts of where the session
  /// ran, like `asn` — not measurements): the line's transition mechanism
  /// and whether it runs a CLAT. nat44 / false on every v4 line; fig14's
  /// accuracy scoring compares the battery's verdicts against these.
  nat::TranslatorMode line_mode = nat::TranslatorMode::nat44;
  bool line_clat = false;

  netcore::Ipv4Address ip_dev;                 ///< device-local address
  std::optional<netcore::Ipv4Address> ip_cpe;  ///< CPE external IP via UPnP
  std::optional<std::string> cpe_model;        ///< CPE model string via UPnP
  std::optional<netcore::Ipv4Address> ip_pub;  ///< server-observed public IP

  std::vector<FlowObservation> tcp_flows;      ///< port-translation test
  std::optional<stun::StunOutcome> stun;       ///< STUN test (subset)
  std::optional<TtlEnumResult> enumeration;    ///< TTL enumeration (subset)
  /// Big-NAT battery (v6-transition worlds only); absent in v4-only
  /// campaigns so their fingerprints stay byte-identical to PR 7.
  std::optional<TransitionObservation> transition;
};

/// Order-sensitive FNV-1a digest of every observation in `r`. Two sessions
/// hash equal iff the measured values match field for field — what the
/// parallel-campaign tests and bench compare across worker counts.
[[nodiscard]] std::uint64_t fingerprint(const SessionResult& r) noexcept;

/// Digest of a whole campaign, sensitive to session order.
[[nodiscard]] std::uint64_t fingerprint(
    const std::vector<SessionResult>& sessions) noexcept;

}  // namespace cgn::netalyzr
