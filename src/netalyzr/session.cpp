#include "netalyzr/session.hpp"

namespace cgn::netalyzr {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, double v) {
  // Timeouts are multiples of the probe granularity, so the bit pattern is
  // exact and comparable across runs.
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  __builtin_memcpy(&bits, &v, sizeof bits);
  mix(h, bits);
}

void mix(std::uint64_t& h, const netcore::Endpoint& e) {
  mix(h, std::uint64_t{e.address.value()});
  mix(h, std::uint64_t{e.port});
}

}  // namespace

std::uint64_t fingerprint(const SessionResult& r) noexcept {
  std::uint64_t h = kFnvOffset;
  mix(h, std::uint64_t{r.asn});
  mix(h, std::uint64_t{r.cellular});
  mix(h, std::uint64_t{r.ip_dev.value()});
  mix(h, r.ip_cpe ? std::uint64_t{r.ip_cpe->value()} : std::uint64_t(-1));
  if (r.cpe_model)
    for (char c : *r.cpe_model) mix(h, std::uint64_t(std::uint8_t(c)));
  mix(h, r.ip_pub ? std::uint64_t{r.ip_pub->value()} : std::uint64_t(-1));
  mix(h, std::uint64_t{r.tcp_flows.size()});
  for (const FlowObservation& f : r.tcp_flows) {
    mix(h, std::uint64_t{f.local_port});
    mix(h, f.observed);
  }
  if (r.stun) {
    mix(h, std::uint64_t(r.stun->type));
    if (r.stun->mapped) mix(h, *r.stun->mapped);
  }
  if (r.enumeration) {
    mix(h, std::uint64_t(r.enumeration->path_hops));
    mix(h, std::uint64_t(r.enumeration->experiments));
    for (const NatHopObservation& hop : r.enumeration->hops) {
      mix(h, std::uint64_t(hop.hop));
      mix(h, std::uint64_t{hop.stateful});
      if (hop.timeout_s) mix(h, *hop.timeout_s);
    }
  }
  if (r.transition) {
    mix(h, std::uint64_t{r.transition->pref64_detected});
    mix(h, std::uint64_t(r.transition->pref64_length));
    mix(h, std::uint64_t{r.transition->literal_v4_ok});
    if (r.transition->translator_timeout_s)
      mix(h, *r.transition->translator_timeout_s);
  }
  return h;
}

std::uint64_t fingerprint(
    const std::vector<SessionResult>& sessions) noexcept {
  std::uint64_t h = kFnvOffset;
  mix(h, std::uint64_t{sessions.size()});
  for (const SessionResult& s : sessions) mix(h, fingerprint(s));
  return h;
}

}  // namespace cgn::netalyzr
