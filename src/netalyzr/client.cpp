#include "netalyzr/client.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace cgn::netalyzr {

namespace {
// OS ephemeral range (the Linux default); Figure 8(a)'s contrast between OS
// ephemeral ports and CGN-renumbered ports rests on this being a narrow,
// well-known band.
constexpr std::uint16_t kEphemeralLo = 32768;
constexpr std::uint16_t kEphemeralHi = 60999;

// Session volume and test mix across the whole campaign.
obs::Counter& g_sessions = obs::counter("netalyzr.sessions");
obs::Counter& g_stun_tests = obs::counter("netalyzr.stun_tests");
obs::Counter& g_enum_tests = obs::counter("netalyzr.enum_tests");
obs::Counter& g_enum_experiments = obs::counter("netalyzr.enum_experiments");
obs::Counter& g_transition_tests = obs::counter("netalyzr.transition_tests");
}  // namespace

NetalyzrClient::NetalyzrClient(ClientContext context, sim::PortDemux& demux,
                               sim::Rng rng, fault::RetryPolicy retry)
    : ctx_(context), demux_(&demux), rng_(std::move(rng)), retry_(retry) {
  ephemeral_cursor_ = static_cast<std::uint16_t>(
      rng_.uniform(kEphemeralLo, kEphemeralHi));
}

NetalyzrClient::~NetalyzrClient() {
  for (std::uint16_t port : bound_ports_) demux_->unbind(port);
}

void NetalyzrClient::bind(std::uint16_t port) {
  demux_->bind(port, [this](sim::Network& n, const sim::Packet& p) {
    handle(n, p);
  });
  bound_ports_.push_back(port);
}

std::uint16_t NetalyzrClient::next_ephemeral_port() {
  std::uint16_t port = ephemeral_cursor_;
  ephemeral_cursor_ = port >= kEphemeralHi
                          ? kEphemeralLo
                          : static_cast<std::uint16_t>(port + 1);
  return port;
}

void NetalyzrClient::handle(sim::Network&, const sim::Packet& pkt) {
  const auto* msg = std::any_cast<NetalyzrMessage>(&pkt.payload);
  if (!msg) return;
  if (const auto* echo = std::get_if<EchoResponse>(msg)) {
    last_echo_ = *echo;
    return;
  }
  if (const auto* ack = std::get_if<UdpInitAck>(msg)) {
    last_ack_ = *ack;
    return;
  }
  if (const auto* probe = std::get_if<UdpProbe>(msg)) {
    received_probes_.insert(FlowKey{probe->flow, probe->seq});
    return;
  }
}

void NetalyzrClient::resolve_for_v6(netcore::Ipv4Address name) {
  if (!ctx_.v6stack || !ctx_.dns64) return;
  ctx_.v6stack->note_resolved(name, ctx_.dns64->resolve_aaaa(name).aaaa);
}

bool NetalyzrClient::echo_flow(sim::Network& net, sim::Clock* clock,
                               netcore::Endpoint dst,
                               std::vector<FlowObservation>* flows,
                               SessionResult* result) {
  std::uint16_t port = next_ephemeral_port();
  bind(port);
  return fault::retry_loop(retry_, clock, &rng_, [&] {
    std::uint64_t tx = next_tx_++;
    last_echo_.reset();
    sim::Packet pkt = sim::Packet::tcp({ctx_.device_address, port}, dst);
    pkt.payload = NetalyzrMessage{EchoRequest{tx}};
    net.send(std::move(pkt), ctx_.host);
    if (!(last_echo_ && last_echo_->tx == tx)) return false;
    if (flows)
      flows->push_back(FlowObservation{port, last_echo_->observed});
    if (result && !result->ip_pub)
      result->ip_pub = last_echo_->observed.address;
    return true;
  });
}

SessionResult NetalyzrClient::run_basic(sim::Network& net,
                                        NetalyzrServer& server,
                                        sim::Clock* clock) {
  g_sessions.inc();
  SessionResult result;
  result.asn = ctx_.asn;
  result.cellular = ctx_.cellular;
  result.ip_dev = ctx_.device_address;
  if (ctx_.upnp_cpe) {
    result.ip_cpe = ctx_.upnp_cpe->upnp_external_address();
    result.cpe_model = ctx_.upnp_cpe->config().name;
  }

  // On a v6-only line the OS resolves the server name before connecting —
  // which is what routes the flow through the NAT64 (DNS64-synthesized
  // AAAA). The literal address is deliberately never resolved.
  resolve_for_v6(server.echo_endpoint().address);

  // Ten sequential TCP flows to the echo server (§6.2). A flow whose reply
  // is lost retransmits from the same local port (same socket, new tx),
  // paying backoff on the session clock.
  for (int i = 0; i < 10; ++i)
    echo_flow(net, clock, server.echo_endpoint(), &result.tcp_flows, &result);
  return result;
}

void NetalyzrClient::run_stun(sim::Network& net,
                              const stun::StunServer& server,
                              SessionResult& result) {
  g_stun_tests.inc();
  resolve_for_v6(server.primary().address);
  resolve_for_v6(server.alternate_address().address);
  std::uint16_t port = next_ephemeral_port();
  stun::StunClient client(ctx_.host, {ctx_.device_address, port}, *demux_);
  result.stun = client.classify(net, server);
}

std::optional<bool> NetalyzrClient::reachability_experiment(
    sim::Network& net, sim::Clock& clock, NetalyzrServer& server,
    int path_hops, int hop, double tidle, double keepalive_interval) {
  g_enum_experiments.inc();
  const std::uint64_t flow = rng_.uniform(1, ~std::uint64_t{0} - 1);
  const std::uint16_t port = next_ephemeral_port();
  bind(port);
  const netcore::Endpoint local{ctx_.device_address, port};

  // (a) Initialization packet: creates NAT state on every hop. Lost inits
  // retransmit immediately (null clock): sub-second retries must not eat
  // into the idle interval under measurement.
  const bool acked = fault::retry_loop(retry_, nullptr, nullptr, [&] {
    last_ack_.reset();
    sim::Packet init = sim::Packet::udp(local, server.udp_endpoint());
    init.payload = NetalyzrMessage{UdpInit{flow}};
    net.send(std::move(init), ctx_.host);
    return last_ack_ && last_ack_->flow == flow;
  });
  if (!acked) return std::nullopt;

  // (b) TTL-limited keepalives from both ends during the idle period.
  // ttl_c = hop dies exactly at the hop under test, refreshing hops 1..h-1;
  // ttl_s = path_hops+1-hop dies there from the other side, refreshing the
  // server-side hops. The hop under test is starved.
  const int ttl_c = hop;
  const int ttl_s = path_hops + 1 - hop;
  double elapsed = 0.0;
  while (elapsed + keepalive_interval < tidle) {
    clock.advance(keepalive_interval);
    elapsed += keepalive_interval;
    sim::Packet ka = sim::Packet::udp(local, server.udp_endpoint(), ttl_c);
    ka.payload = NetalyzrMessage{UdpKeepalive{flow}};
    net.send(std::move(ka), ctx_.host);
    server.send_keepalive(net, flow, ttl_s);
  }
  clock.advance(tidle - elapsed);

  // (c) Full-TTL reachability probe from the server, re-issued with a fresh
  // sequence number if lost in transit. An expired mapping stays expired on
  // re-probe, so retries repair link loss without masking NAT state.
  bool reached = false;
  fault::retry_loop(retry_, nullptr, nullptr, [&] {
    const std::uint64_t seq = next_tx_++;
    server.send_probe(net, flow, seq);
    reached = received_probes_.contains(FlowKey{flow, seq});
    return reached;
  });
  return reached;
}

void NetalyzrClient::run_enumeration(sim::Network& net, sim::Clock& clock,
                                     NetalyzrServer& server,
                                     const TtlEnumConfig& config,
                                     SessionResult& result) {
  g_enum_tests.inc();
  TtlEnumResult out;

  // Path length discovery: the shortest TTL whose init gets acknowledged has
  // crossed every intermediate hop.
  int path_hops = -1;
  for (int ttl = 1; ttl <= config.max_hops + 1; ++ttl) {
    const std::uint64_t flow = rng_.uniform(1, ~std::uint64_t{0} - 1);
    const std::uint16_t port = next_ephemeral_port();
    bind(port);
    // A lost init would misread the path length; retransmit immediately
    // (null clock) so the TTL ladder's timing is undisturbed.
    const bool acked = fault::retry_loop(retry_, nullptr, nullptr, [&] {
      last_ack_.reset();
      sim::Packet init = sim::Packet::udp({ctx_.device_address, port},
                                          server.udp_endpoint(), ttl);
      init.payload = NetalyzrMessage{UdpInit{flow}};
      net.send(std::move(init), ctx_.host);
      return last_ack_ && last_ack_->flow == flow;
    });
    ++out.experiments;
    if (acked) {
      path_hops = ttl - 1;
      break;
    }
  }
  if (path_hops < 0) {
    result.enumeration = out;  // could not even reach the server
    return;
  }
  out.path_hops = path_hops;

  // Pass 1: statefulness of every hop at the maximum idle period.
  std::vector<int> stateful_hops;
  for (int hop = 1; hop <= path_hops; ++hop) {
    auto reachable = reachability_experiment(net, clock, server, path_hops,
                                             hop, config.max_idle_s,
                                             config.keepalive_interval_s);
    ++out.experiments;
    NatHopObservation obs;
    obs.hop = hop;
    obs.stateful = reachable.has_value() && !*reachable;
    out.hops.push_back(obs);
    if (obs.stateful) stateful_hops.push_back(hop);
  }

  // Pass 2: timeout sweep per stateful hop, at keepalive granularity.
  for (int hop : stateful_hops) {
    for (double tidle = config.keepalive_interval_s;
         tidle <= config.max_idle_s; tidle += config.keepalive_interval_s) {
      auto reachable = reachability_experiment(net, clock, server, path_hops,
                                               hop, tidle,
                                               config.keepalive_interval_s);
      ++out.experiments;
      if (reachable.has_value() && !*reachable) {
        out.hops[static_cast<std::size_t>(hop - 1)].timeout_s = tidle;
        break;
      }
    }
  }

  result.enumeration = out;
}

void NetalyzrClient::run_transition(sim::Network& net, sim::Clock& clock,
                                    NetalyzrServer& server,
                                    const TransitionBatteryConfig& config,
                                    SessionResult& result) {
  g_transition_tests.inc();
  TransitionObservation obs;

  // (a) pref64 discovery: resolve the IPv4-only anchors through the carrier
  // resolver and scan the RFC 6052 lengths. Only a DNS64 synthesizes an
  // AAAA for these names, so detection == "a NAT64 path exists".
  if (ctx_.dns64) {
    if (auto pref = v6::discover_pref64(*ctx_.dns64)) {
      obs.pref64_detected = true;
      obs.pref64_length = pref->length();
    }
  }

  // (b) literal-v4 reachability: one echo flow to the server's second
  // address, bypassing DNS. Works through NAT444, DS-Lite and 464XLAT
  // (CLAT translates literals statelessly); dies on a v6-only NAT64 line.
  // Together with (a) this separates NAT64-only from 464XLAT.
  if (server.has_literal_address())
    obs.literal_v4_ok = echo_flow(net, &clock, server.literal_echo_endpoint(),
                                  nullptr, nullptr);

  // (c) Translator-timeout sweep: open a UDP flow, starve the whole path
  // for tidle, then have the server probe the mapped endpoint. The first
  // idle period the probe misses bounds the path's minimum mapping timeout
  // — the per-carrier number the Big-NAT study tabulates.
  for (double tidle = config.timeout_granularity_s;
       tidle <= config.timeout_max_s + 1e-9;
       tidle += config.timeout_granularity_s) {
    const std::uint64_t flow = rng_.uniform(1, ~std::uint64_t{0} - 1);
    const std::uint16_t port = next_ephemeral_port();
    bind(port);
    const bool acked = fault::retry_loop(retry_, nullptr, nullptr, [&] {
      last_ack_.reset();
      sim::Packet init =
          sim::Packet::udp({ctx_.device_address, port}, server.udp_endpoint());
      init.payload = NetalyzrMessage{UdpInit{flow}};
      net.send(std::move(init), ctx_.host);
      return last_ack_ && last_ack_->flow == flow;
    });
    if (!acked) break;
    clock.advance(tidle);
    bool reached = false;
    fault::retry_loop(retry_, nullptr, nullptr, [&] {
      const std::uint64_t seq = next_tx_++;
      server.send_probe(net, flow, seq);
      reached = received_probes_.contains(FlowKey{flow, seq});
      return reached;
    });
    if (!reached) {
      obs.translator_timeout_s = tidle;
      break;
    }
  }

  result.transition = obs;
}

}  // namespace cgn::netalyzr
