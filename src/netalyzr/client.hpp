// The Netalyzr client: runs the paper's measurement tests from an end-user
// device inside the simulated network.
//
//  * Address test (§4.2): collect IPdev (local config), IPcpe (UPnP query to
//    the CPE) and IPpub (server-observed).
//  * Port-translation test (§6.2): ten sequential TCP flows to the echo
//    server, comparing chosen vs observed source ports; also reveals NAT
//    pooling via the set of observed public addresses.
//  * TTL-driven NAT enumeration (§6.3): per-hop reachability experiments
//    with TTL-limited keepalives from both ends, locating stateful hops and
//    measuring their mapping timeouts.
//  * STUN test (§6.3): RFC 3489 classification via cgn::stun.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "fault/retry.hpp"
#include "nat/nat_device.hpp"
#include "netalyzr/messages.hpp"
#include "netalyzr/server.hpp"
#include "netalyzr/session.hpp"
#include "sim/demux.hpp"
#include "sim/rng.hpp"
#include "stun/stun.hpp"

namespace cgn::netalyzr {

/// Static facts about the vantage point a session runs from.
struct ClientContext {
  sim::NodeId host = sim::kNoNode;
  netcore::Ipv4Address device_address;
  netcore::Asn asn = 0;
  bool cellular = false;
  /// UPnP channel to the first-hop CPE, when the CPE offers UPnP (the paper
  /// could query it in ~40% of sessions). Null when unavailable.
  const nat::NatDevice* upnp_cpe = nullptr;
};

struct TtlEnumConfig {
  /// Longest idle period tested; the paper caps at 200 s to bound session
  /// runtime, so longer NAT timeouts go unnoticed.
  double max_idle_s = 200.0;
  /// Keepalive cadence (also the timeout measurement granularity).
  double keepalive_interval_s = 10.0;
  /// Hop-search upper bound.
  int max_hops = 24;
};

class NetalyzrClient {
 public:
  /// `retry` is the probe retransmission policy; the default (attempts = 1)
  /// reproduces the original fire-once client exactly.
  NetalyzrClient(ClientContext context, sim::PortDemux& demux, sim::Rng rng,
                 fault::RetryPolicy retry = {});
  ~NetalyzrClient();

  NetalyzrClient(const NetalyzrClient&) = delete;
  NetalyzrClient& operator=(const NetalyzrClient&) = delete;

  /// Address + port-translation tests. Always the first call of a session.
  /// `clock` (may be null) absorbs the retry policy's backoff when an echo
  /// flow needs retransmitting; pass the session's per-shard clock.
  [[nodiscard]] SessionResult run_basic(sim::Network& net,
                                        NetalyzrServer& server,
                                        sim::Clock* clock = nullptr);

  /// STUN classification; stores the outcome into `result`.
  void run_stun(sim::Network& net, const stun::StunServer& server,
                SessionResult& result);

  /// TTL-driven NAT enumeration; advances `clock` through the idle periods
  /// and stores the outcome into `result`.
  void run_enumeration(sim::Network& net, sim::Clock& clock,
                       NetalyzrServer& server, const TtlEnumConfig& config,
                       SessionResult& result);

 private:
  struct FlowKey {
    std::uint64_t flow;
    std::uint64_t seq;
    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.flow * 1099511628211ull + k.seq);
    }
  };

  void handle(sim::Network& net, const sim::Packet& pkt);
  std::uint16_t next_ephemeral_port();
  void bind(std::uint16_t port);
  /// One §6.3 reachability experiment for hop `h` with idle period `tidle`.
  /// Returns true when the final server probe reached the client, nullopt
  /// when the experiment could not be set up (init never acked).
  std::optional<bool> reachability_experiment(sim::Network& net,
                                              sim::Clock& clock,
                                              NetalyzrServer& server,
                                              int path_hops, int hop,
                                              double tidle,
                                              double keepalive_interval);

  ClientContext ctx_;
  sim::PortDemux* demux_;
  sim::Rng rng_;
  fault::RetryPolicy retry_;
  std::vector<std::uint16_t> bound_ports_;

  std::uint16_t ephemeral_cursor_ = 0;
  std::uint64_t next_tx_ = 1;

  std::optional<EchoResponse> last_echo_;
  std::optional<UdpInitAck> last_ack_;
  std::unordered_set<FlowKey, FlowKeyHash> received_probes_;
};

}  // namespace cgn::netalyzr
