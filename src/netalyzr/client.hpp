// The Netalyzr client: runs the paper's measurement tests from an end-user
// device inside the simulated network.
//
//  * Address test (§4.2): collect IPdev (local config), IPcpe (UPnP query to
//    the CPE) and IPpub (server-observed).
//  * Port-translation test (§6.2): ten sequential TCP flows to the echo
//    server, comparing chosen vs observed source ports; also reveals NAT
//    pooling via the set of observed public addresses.
//  * TTL-driven NAT enumeration (§6.3): per-hop reachability experiments
//    with TTL-limited keepalives from both ends, locating stateful hops and
//    measuring their mapping timeouts.
//  * STUN test (§6.3): RFC 3489 classification via cgn::stun.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "fault/retry.hpp"
#include "nat/nat_device.hpp"
#include "netalyzr/messages.hpp"
#include "netalyzr/server.hpp"
#include "netalyzr/session.hpp"
#include "sim/demux.hpp"
#include "sim/rng.hpp"
#include "stun/stun.hpp"
#include "v6/dns64.hpp"
#include "v6/translator.hpp"

namespace cgn::netalyzr {

/// Static facts about the vantage point a session runs from.
struct ClientContext {
  sim::NodeId host = sim::kNoNode;
  netcore::Ipv4Address device_address;
  netcore::Asn asn = 0;
  bool cellular = false;
  /// UPnP channel to the first-hop CPE, when the CPE offers UPnP (the paper
  /// could query it in ~40% of sessions). Null when unavailable.
  const nat::NatDevice* upnp_cpe = nullptr;
  /// The carrier's DNS64-capable resolver, when the line is v6-routed
  /// (NAT64/464XLAT). Null on v4-only and DS-Lite lines.
  const v6::Dns64Resolver* dns64 = nullptr;
  /// The host's v6-only stack (NAT64 line without CLAT). When set, the
  /// client resolves server names before connecting, as a real OS would —
  /// unresolved v4 literals cannot leave the host.
  v6::HostV6Stack* v6stack = nullptr;
};

/// Knobs of the Big-NAT transition battery (run_transition).
struct TransitionBatteryConfig {
  /// Idle-sweep step — also the timeout measurement granularity. Coarser
  /// than the TTL enumeration sweep to bound per-session cost.
  double timeout_granularity_s = 15.0;
  /// Longest idle period probed.
  double timeout_max_s = 120.0;
};

struct TtlEnumConfig {
  /// Longest idle period tested; the paper caps at 200 s to bound session
  /// runtime, so longer NAT timeouts go unnoticed.
  double max_idle_s = 200.0;
  /// Keepalive cadence (also the timeout measurement granularity).
  double keepalive_interval_s = 10.0;
  /// Hop-search upper bound.
  int max_hops = 24;
};

class NetalyzrClient {
 public:
  /// `retry` is the probe retransmission policy; the default (attempts = 1)
  /// reproduces the original fire-once client exactly.
  NetalyzrClient(ClientContext context, sim::PortDemux& demux, sim::Rng rng,
                 fault::RetryPolicy retry = {});
  ~NetalyzrClient();

  NetalyzrClient(const NetalyzrClient&) = delete;
  NetalyzrClient& operator=(const NetalyzrClient&) = delete;

  /// Address + port-translation tests. Always the first call of a session.
  /// `clock` (may be null) absorbs the retry policy's backoff when an echo
  /// flow needs retransmitting; pass the session's per-shard clock.
  [[nodiscard]] SessionResult run_basic(sim::Network& net,
                                        NetalyzrServer& server,
                                        sim::Clock* clock = nullptr);

  /// STUN classification; stores the outcome into `result`.
  void run_stun(sim::Network& net, const stun::StunServer& server,
                SessionResult& result);

  /// TTL-driven NAT enumeration; advances `clock` through the idle periods
  /// and stores the outcome into `result`.
  void run_enumeration(sim::Network& net, sim::Clock& clock,
                       NetalyzrServer& server, const TtlEnumConfig& config,
                       SessionResult& result);

  /// Big-NAT transition battery ("Tracking the Big NAT"): pref64 discovery
  /// via the carrier resolver (RFC 7050 anchors), a literal-v4 echo probe
  /// against the server's never-resolved second address, and a coarse
  /// full-path idle sweep measuring the translator's mapping timeout.
  /// Stores a TransitionObservation into `result`.
  void run_transition(sim::Network& net, sim::Clock& clock,
                      NetalyzrServer& server,
                      const TransitionBatteryConfig& config,
                      SessionResult& result);

 private:
  struct FlowKey {
    std::uint64_t flow;
    std::uint64_t seq;
    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.flow * 1099511628211ull + k.seq);
    }
  };

  void handle(sim::Network& net, const sim::Packet& pkt);
  std::uint16_t next_ephemeral_port();
  void bind(std::uint16_t port);
  /// On a v6-only line, resolves `name` through the carrier DNS64 and
  /// teaches the host stack the AAAA, as a real OS resolver would before
  /// connect(). No-op on lines with a v4 path (CLAT, DS-Lite, NAT444).
  void resolve_for_v6(netcore::Ipv4Address name);
  /// One TCP echo flow to `dst`; true when the echo came back.
  bool echo_flow(sim::Network& net, sim::Clock* clock, netcore::Endpoint dst,
                 std::vector<FlowObservation>* flows, SessionResult* result);
  /// One §6.3 reachability experiment for hop `h` with idle period `tidle`.
  /// Returns true when the final server probe reached the client, nullopt
  /// when the experiment could not be set up (init never acked).
  std::optional<bool> reachability_experiment(sim::Network& net,
                                              sim::Clock& clock,
                                              NetalyzrServer& server,
                                              int path_hops, int hop,
                                              double tidle,
                                              double keepalive_interval);

  ClientContext ctx_;
  sim::PortDemux* demux_;
  sim::Rng rng_;
  fault::RetryPolicy retry_;
  std::vector<std::uint16_t> bound_ports_;

  std::uint16_t ephemeral_cursor_ = 0;
  std::uint64_t next_tx_ = 1;

  std::optional<EchoResponse> last_echo_;
  std::optional<UdpInitAck> last_ack_;
  std::unordered_set<FlowKey, FlowKeyHash> received_probes_;
};

}  // namespace cgn::netalyzr
