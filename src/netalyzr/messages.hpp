// Wire messages between the Netalyzr client and its measurement servers.
#pragma once

#include <cstdint>
#include <variant>

#include "netcore/ipv4.hpp"

namespace cgn::netalyzr {

/// TCP echo request (port-translation test, §6.2): the server answers with
/// the source endpoint it observed, exposing the NAT's external mapping.
struct EchoRequest {
  std::uint64_t tx = 0;
};

struct EchoResponse {
  std::uint64_t tx = 0;
  netcore::Endpoint observed;
};

/// First packet of a UDP reachability-experiment flow (§6.3). The server
/// acknowledges and records the observed source so it can later send
/// keepalives/probes toward the client's mapped endpoint.
struct UdpInit {
  std::uint64_t flow = 0;
};

struct UdpInitAck {
  std::uint64_t flow = 0;
  netcore::Endpoint observed;
};

/// TTL-limited keepalive, either direction. Intentionally expires mid-path.
struct UdpKeepalive {
  std::uint64_t flow = 0;
};

/// Server-to-client reachability probe; the client records receipt.
struct UdpProbe {
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;
};

using NetalyzrMessage = std::variant<EchoRequest, EchoResponse, UdpInit,
                                     UdpInitAck, UdpKeepalive, UdpProbe>;

}  // namespace cgn::netalyzr
