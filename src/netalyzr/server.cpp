#include "netalyzr/server.hpp"

namespace cgn::netalyzr {

void NetalyzrServer::install(sim::Network& net) {
  net.add_local_address(host_, address_);
  net.register_address(address_, host_, net.root());
  net.set_receiver(host_, [this](sim::Network& n, const sim::Packet& p) {
    handle(n, p);
  });
}

void NetalyzrServer::install_literal_address(sim::Network& net,
                                             netcore::Ipv4Address a) {
  literal_address_ = a;
  net.add_local_address(host_, a);
  net.register_address(a, host_, net.root());
}

void NetalyzrServer::handle(sim::Network& net, const sim::Packet& pkt) {
  const auto* msg = std::any_cast<NetalyzrMessage>(&pkt.payload);
  if (!msg) return;
  if (const auto* echo = std::get_if<EchoRequest>(msg)) {
    sim::Packet reply =
        sim::Packet::tcp(pkt.dst, pkt.src, sim::TcpFlag::none);
    reply.payload = NetalyzrMessage{EchoResponse{echo->tx, pkt.src}};
    net.send(std::move(reply), host_);
    return;
  }
  if (const auto* init = std::get_if<UdpInit>(msg)) {
    flows()[init->flow] = pkt.src;
    sim::Packet reply = sim::Packet::udp(pkt.dst, pkt.src);
    reply.payload = NetalyzrMessage{UdpInitAck{init->flow, pkt.src}};
    net.send(std::move(reply), host_);
    return;
  }
  // Client-side keepalives need no reply; their job is refreshing NAT state
  // on the hops they cross (most never arrive here at all).
}

std::optional<netcore::Endpoint> NetalyzrServer::flow_endpoint(
    std::uint64_t flow) const {
  const auto& stripe = flows();
  auto it = stripe.find(flow);
  if (it == stripe.end()) return std::nullopt;
  return it->second;
}

std::optional<netcore::Endpoint> NetalyzrServer::observed_endpoint(
    std::uint64_t flow) const {
  return flow_endpoint(flow);
}

void NetalyzrServer::send_keepalive(sim::Network& net, std::uint64_t flow,
                                    int ttl) {
  auto dst = flow_endpoint(flow);
  if (!dst) return;
  sim::Packet pkt = sim::Packet::udp(udp_endpoint(), *dst, ttl);
  pkt.payload = NetalyzrMessage{UdpKeepalive{flow}};
  net.send(std::move(pkt), host_);
}

bool NetalyzrServer::send_probe(sim::Network& net, std::uint64_t flow,
                                std::uint64_t seq) {
  auto dst = flow_endpoint(flow);
  if (!dst) return false;
  sim::Packet pkt = sim::Packet::udp(udp_endpoint(), *dst);
  pkt.payload = NetalyzrMessage{UdpProbe{flow, seq}};
  net.send(std::move(pkt), host_);
  return true;
}

}  // namespace cgn::netalyzr
