// Deterministic shard execution for campaign phases.
//
// The campaign layer splits its work list into *shards* keyed by simulation
// structure (one Netalyzr shard per ISP, one ping shard per root routing
// subtree) and hands them to run_shards(). The contract that makes an
// N-thread campaign bit-identical to the 1-thread one:
//
//  * The shard decomposition never depends on the worker count — callers
//    shard by topology, not by N.
//  * Assignment is static round-robin: shard i runs on worker i % N, and
//    each worker processes its shards in ascending shard order. No work
//    stealing, no completion-order effects.
//  * Each shard derives its own RNG substream (sim::Rng::fork(seed, shard))
//    and runs under its own virtual clock (sim::ThreadClockScope), so no
//    shard observes another's randomness or time.
//  * Worker w installs obs thread slot w + 1 (obs::ThreadSlotScope) for its
//    whole lifetime; metric cells stay single-writer and merge exactly.
//  * run_shards() is a barrier: all shards finish before it returns; any
//    shard failures are rethrown on the caller afterwards. Callers then
//    merge per-shard results in shard order.
//
// Because assignment is static and shards touch disjoint simulation state,
// the worker count only changes wall-clock time, never results — including
// N == 1, which runs the exact same sharded code path inline.
#pragma once

#include <cstddef>
#include <functional>

namespace cgn::par {

/// Worker count from the CGN_THREADS environment variable, clamped to
/// [1, obs::kMaxThreadSlots - 1]; 1 (serial) when unset or unparsable.
[[nodiscard]] std::size_t configured_threads();

/// Runs `shard_fn(shard)` for every shard in [0, shard_count) across
/// `threads` workers (0 -> configured_threads()) with the static
/// round-robin assignment described above, and blocks until all shards
/// complete. With one worker (or one shard) everything runs inline on the
/// calling thread — same code path, no threads spawned. If exactly one
/// shard throws, its exception is rethrown unchanged after the barrier;
/// if several throw, a std::runtime_error aggregating the failure count
/// and the first few shard ids/messages is thrown instead (deterministic:
/// built in ascending shard order, never worker order), so no failure is
/// silently dropped. shard_fn must not touch state shared with other
/// shards unless that state is internally synchronized.
void run_shards(std::size_t shard_count,
                const std::function<void(std::size_t)>& shard_fn,
                std::size_t threads = 0);

}  // namespace cgn::par
