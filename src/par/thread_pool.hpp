// Deterministic shard execution for campaign phases.
//
// The campaign layer splits its work list into *shards* keyed by simulation
// structure (one Netalyzr shard per ISP, one ping shard per root routing
// subtree) and hands them to run_shards(). The contract that makes an
// N-thread campaign bit-identical to the 1-thread one:
//
//  * The shard decomposition never depends on the worker count — callers
//    shard by topology, not by N.
//  * Shards are claimed dynamically from a shared work queue (one atomic
//    fetch_add per shard, the classic self-scheduling loop), so a slow
//    shard no longer stalls the fixed round-robin lane it used to be
//    pinned to. Which worker runs a shard is a scheduling accident — and
//    is allowed to be, because everything a shard computes is a function
//    of the *shard id* alone:
//  * Each shard derives its own RNG substream (sim::Rng::fork(seed, shard))
//    and runs under its own virtual clock (sim::ThreadClockScope), so no
//    shard observes another's randomness or time.
//  * Reduction is ordered: callers merge per-shard results in ascending
//    shard order after the barrier, and shard failures are aggregated in
//    ascending shard order no matter which worker recorded them. Stealing
//    therefore changes wall-clock only, never a byte of output.
//  * Workers come from a process-wide persistent pool (WorkerPool) that is
//    spawned once and parked between campaigns; a run_shards call wakes
//    `workers - 1` pool threads and the calling thread works the queue
//    alongside them. Pool thread w permanently owns obs thread slot w + 1
//    (obs::ThreadSlotScope); the caller keeps its own slot (0 on the main
//    thread), so metric cells stay single-writer and merge exactly.
//  * run_shards() is a barrier: all shards finish before it returns; any
//    shard failures are rethrown on the caller afterwards.
//
// With one worker (or one shard) everything runs inline on the calling
// thread — same sharded code path, no pool interaction — so the worker
// count only changes wall-clock time, never results.
#pragma once

#include <cstddef>
#include <functional>

namespace cgn::par {

/// Worker count from the CGN_THREADS environment variable, clamped to
/// [1, obs::kMaxThreadSlots - 1]; 1 (serial) when unset. The value must be
/// a plain decimal number: malformed input (trailing garbage like "4x",
/// signs, empty digits) is *rejected* — the campaign runs serial and a
/// one-time warning is printed, rather than half-parsing the prefix.
/// Clamping an oversized value is also logged once.
[[nodiscard]] std::size_t configured_threads();

/// Runs `shard_fn(shard)` for every shard in [0, shard_count) across
/// `threads` workers (0 -> configured_threads()) via the self-scheduling
/// queue described above, and blocks until all shards complete. With one
/// worker (or one shard, or when called from inside a running shard body
/// — nested fan-outs never touch the busy pool) everything runs inline
/// on the calling thread — same code path, no threads woken. If exactly one shard throws, its exception is rethrown
/// unchanged after the barrier; if several throw, a std::runtime_error
/// aggregating the failure count and the first few shard ids/messages is
/// thrown instead (deterministic: built in ascending shard order, never
/// worker or completion order), so no failure is silently dropped.
/// shard_fn must not touch state shared with other shards unless that
/// state is internally synchronized.
void run_shards(std::size_t shard_count,
                const std::function<void(std::size_t)>& shard_fn,
                std::size_t threads = 0);

/// Introspection for tests and diagnostics: how many persistent pool
/// threads are currently spawned. Grows on demand up to
/// obs::kMaxThreadSlots - 1 and never shrinks; two campaigns at the same
/// worker count reuse the same threads instead of paying create/join per
/// campaign.
[[nodiscard]] std::size_t pool_thread_count();

/// True when the calling thread is a persistent pool worker. run_shards
/// from such a thread runs inline (no nested fan-out).
[[nodiscard]] bool on_pool_thread();

}  // namespace cgn::par
