#include "par/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace cgn::par {

namespace {

obs::Counter& g_jobs = obs::counter("par.jobs_dispatched");
obs::Counter& g_shards = obs::counter("par.shards_run");
obs::Counter& g_spawned = obs::counter("par.pool_threads_spawned");

thread_local bool t_pool_worker = false;
/// True while this thread is executing a shard body (pool worker or
/// caller lane 0). A nested run_shards under a running job must not touch
/// the pool — the caller lane still holds the job mutex — so it runs
/// inline instead.
thread_local bool t_in_shard = false;

struct InShardScope {
  bool prev = t_in_shard;
  InShardScope() { t_in_shard = true; }
  ~InShardScope() { t_in_shard = prev; }
};

/// One dispatched run_shards call. Lives on the heap behind shared_ptrs so
/// a pool thread that wakes late (after the queue drained and the caller
/// returned) still holds valid memory to look at.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  /// Self-scheduling cursor: each worker claims the next unclaimed shard
  /// with one relaxed fetch_add. Claims are unique; order of execution is
  /// a scheduling accident that no output may depend on.
  std::atomic<std::size_t> next{0};
  /// Shards finished (successfully or not). The release increment pairs
  /// with the caller's acquire load so per-lane error writes are visible
  /// at the barrier.
  std::atomic<std::size_t> finished{0};
  /// Lane l records failures of the shards *it* ran; lanes never share a
  /// vector (and each vector sits in its own heap block), so error capture
  /// is write-contention- and false-sharing-free. Merged and sorted by
  /// shard id after the barrier.
  std::vector<std::vector<std::pair<std::size_t, std::exception_ptr>>> errors;
};

/// Process-wide persistent worker pool. Threads are spawned lazily (first
/// campaign that needs them), parked on a condition variable between jobs,
/// and live for the process lifetime; pool thread i permanently owns obs
/// thread slot i + 1. Jobs are serialized: one run_shards fan-out at a
/// time, which matches the campaign drivers (and keeps slot occupancy
/// single-writer).
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool* pool = new WorkerPool();  // leaked: workers park forever
    return *pool;
  }

  void run(std::size_t shard_count,
           const std::function<void(std::size_t)>& shard_fn,
           std::size_t workers) {
    // One fan-out at a time; a concurrent caller queues here instead of
    // racing for pool lanes.
    std::lock_guard<std::mutex> job_lock(job_mu_);
    const std::size_t pool_lanes = workers - 1;
    ensure_threads(pool_lanes);

    auto job = std::make_shared<Job>();
    job->fn = &shard_fn;
    job->count = shard_count;
    job->errors.resize(workers);
    g_jobs.inc();

    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = job;
      job_lanes_ = pool_lanes;
      ++generation_;
    }
    cv_.notify_all();

    // The caller is lane 0: it works the same queue on its own metric slot
    // instead of blocking while the pool does everything.
    work(*job, 0);

    // Barrier: every shard finished (acquire pairs with the workers'
    // release increments, making their result/error writes visible).
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return job->finished.load(std::memory_order_acquire) == job->count;
      });
      job_.reset();
    }
    rethrow(*job);
  }

  [[nodiscard]] std::size_t thread_count() {
    std::lock_guard<std::mutex> lock(mu_);
    return threads_.size();
  }

 private:
  WorkerPool() = default;

  void ensure_threads(std::size_t want) {
    std::lock_guard<std::mutex> lock(mu_);
    while (threads_.size() < want) {
      const std::size_t index = threads_.size();
      threads_.emplace_back([this, index] { worker_main(index); });
      g_spawned.inc();
    }
  }

  void worker_main(std::size_t index) {
    // Permanent identity: pool thread `index` owns metric slot index + 1
    // for its whole life, so any shard it steals writes that slot and the
    // slot never aliases another live thread.
    obs::ThreadSlotScope slot(index + 1);
    t_pool_worker = true;
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return stop_ ||
                 (job_ != nullptr && generation_ != seen_generation &&
                  index < job_lanes_);
        });
        if (stop_) return;
        seen_generation = generation_;
        job = job_;
      }
      work(*job, index + 1);
    }
  }

  /// The self-scheduling loop every lane (caller and pool threads) runs:
  /// claim the next shard, run it, repeat until the queue drains. A lane
  /// that wakes after the drain claims nothing and goes back to sleep.
  void work(Job& job, std::size_t lane) {
    auto& errors = job.errors[lane];
    for (;;) {
      const std::size_t shard =
          job.next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= job.count) break;
      try {
        InShardScope in_shard;
        (*job.fn)(shard);
      } catch (...) {
        errors.emplace_back(shard, std::current_exception());
      }
      g_shards.inc();
      if (job.finished.fetch_add(1, std::memory_order_release) + 1 ==
          job.count) {
        // Whoever finishes the last shard releases the barrier.
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }

  static void rethrow(Job& job) {
    std::vector<std::pair<std::size_t, std::exception_ptr>> failed;
    for (auto& lane : job.errors)
      for (auto& e : lane) failed.push_back(std::move(e));
    if (failed.empty()) return;
    // Deterministic aggregation: ascending shard order, independent of
    // which lane ran (or stole) the failing shard.
    std::sort(failed.begin(), failed.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    throw_shard_failures(job.count, failed);
  }

 public:
  /// Shared with the inline (serial) path so failure messages are
  /// byte-identical at every worker count. `failed` must be sorted by
  /// shard id. A lone failure keeps its original type (callers catch
  /// specific exceptions); multiple failures are aggregated so none is
  /// silently dropped.
  static void throw_shard_failures(
      std::size_t shard_count,
      const std::vector<std::pair<std::size_t, std::exception_ptr>>& failed) {
    if (failed.size() == 1) std::rethrow_exception(failed[0].second);
    std::ostringstream os;
    os << failed.size() << " of " << shard_count << " shards failed: ";
    constexpr std::size_t kMaxDetail = 4;
    for (std::size_t i = 0; i < failed.size() && i < kMaxDetail; ++i) {
      if (i > 0) os << "; ";
      os << "shard " << failed[i].first << ": ";
      try {
        std::rethrow_exception(failed[i].second);
      } catch (const std::exception& e) {
        os << e.what();
      } catch (...) {
        os << "unknown exception";
      }
    }
    if (failed.size() > kMaxDetail)
      os << "; (+" << failed.size() - kMaxDetail << " more)";
    throw std::runtime_error(std::move(os).str());
  }

 private:
  std::mutex job_mu_;  ///< serializes whole jobs (outer)
  std::mutex mu_;      ///< guards dispatch state below (inner)
  std::condition_variable cv_;       ///< parks idle pool threads
  std::condition_variable done_cv_;  ///< releases the caller's barrier
  std::shared_ptr<Job> job_;
  std::size_t job_lanes_ = 0;  ///< pool threads requested for the job
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace

std::size_t configured_threads() {
  const char* v = std::getenv("CGN_THREADS");
  if (!v || !*v) return 1;
  // Strict decimal parse: any non-digit (including signs and trailing
  // garbage like "4x") rejects the whole value instead of silently running
  // with strtoul's half-parsed prefix.
  for (const char* p = v; *p; ++p)
    if (!std::isdigit(static_cast<unsigned char>(*p))) {
      static std::once_flag warned;
      std::call_once(warned, [v] {
        std::fprintf(stderr,
                     "cgn::par: CGN_THREADS='%s' is not a plain decimal "
                     "number; running serial\n",
                     v);
      });
      return 1;
    }
  char* end = nullptr;
  const unsigned long n = std::strtoul(v, &end, 10);
  if (n == 0) return 1;
  // Slot 0 stays reserved for the calling thread, so at most
  // kMaxThreadSlots - 1 additional workers can hold distinct metric slots.
  const std::size_t max_workers = obs::kMaxThreadSlots - 1;
  if (n > max_workers) {
    static std::once_flag clamped;
    std::call_once(clamped, [v, max_workers] {
      std::fprintf(stderr,
                   "cgn::par: CGN_THREADS=%s exceeds the %zu metric slots; "
                   "clamping to %zu workers\n",
                   v, obs::kMaxThreadSlots, max_workers);
    });
    return max_workers;
  }
  return static_cast<std::size_t>(n);
}

std::size_t pool_thread_count() { return WorkerPool::instance().thread_count(); }

bool on_pool_thread() { return t_pool_worker; }

void run_shards(std::size_t shard_count,
                const std::function<void(std::size_t)>& shard_fn,
                std::size_t threads) {
  if (shard_count == 0) return;
  if (threads == 0) threads = configured_threads();
  const std::size_t workers = threads < shard_count ? threads : shard_count;

  if (workers <= 1 || t_in_shard) {
    // Serial path (also the nested-fan-out guard: a shard body that fans
    // out again runs its inner shards inline — whether it is a pool
    // worker or the caller lane, the pool is busy with the outer job).
    // Same shard loop, same failure semantics, calling thread keeps its
    // own metric slot.
    std::vector<std::pair<std::size_t, std::exception_ptr>> failed;
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      try {
        InShardScope in_shard;
        shard_fn(shard);
      } catch (...) {
        failed.emplace_back(shard, std::current_exception());
      }
      g_shards.inc();
    }
    if (!failed.empty()) WorkerPool::throw_shard_failures(shard_count, failed);
    return;
  }

  WorkerPool::instance().run(shard_count, shard_fn, workers);
}

}  // namespace cgn::par
