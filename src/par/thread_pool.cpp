#include "par/thread_pool.hpp"

#include <cstdlib>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace cgn::par {

std::size_t configured_threads() {
  const char* v = std::getenv("CGN_THREADS");
  if (!v || !*v) return 1;
  char* end = nullptr;
  const unsigned long n = std::strtoul(v, &end, 10);
  if (end == v || n == 0) return 1;
  // Slot 0 stays reserved for the main thread, so at most
  // kMaxThreadSlots - 1 workers can hold distinct metric slots.
  const std::size_t max_workers = obs::kMaxThreadSlots - 1;
  return n > max_workers ? max_workers : static_cast<std::size_t>(n);
}

void run_shards(std::size_t shard_count,
                const std::function<void(std::size_t)>& shard_fn,
                std::size_t threads) {
  if (shard_count == 0) return;
  if (threads == 0) threads = configured_threads();
  const std::size_t workers = threads < shard_count ? threads : shard_count;

  // Exceptions recorded per shard so the rethrow (single failure) or the
  // aggregate message (several) is independent of worker timing.
  std::vector<std::exception_ptr> errors(shard_count);

  auto run_worker = [&](std::size_t w) {
    for (std::size_t shard = w; shard < shard_count; shard += workers) {
      try {
        shard_fn(shard);
      } catch (...) {
        errors[shard] = std::current_exception();
      }
    }
  };

  if (workers == 1) {
    // Serial path: same shard loop, calling thread keeps its own slot.
    run_worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
      pool.emplace_back([&, w] {
        // Worker w owns metric slot w+1 for its lifetime; the calling
        // thread (slot 0) is blocked in join below, so slots never alias.
        obs::ThreadSlotScope slot(w + 1);
        run_worker(w);
      });
    for (auto& t : pool) t.join();
  }

  std::vector<std::size_t> failed;
  for (std::size_t shard = 0; shard < shard_count; ++shard)
    if (errors[shard]) failed.push_back(shard);
  if (failed.empty()) return;
  // A lone failure keeps its original type (callers catch specific
  // exceptions); multiple failures are aggregated so none is silently
  // dropped — shard ids in ascending order, capped detail.
  if (failed.size() == 1) std::rethrow_exception(errors[failed[0]]);

  std::ostringstream os;
  os << failed.size() << " of " << shard_count << " shards failed: ";
  constexpr std::size_t kMaxDetail = 4;
  for (std::size_t i = 0; i < failed.size() && i < kMaxDetail; ++i) {
    if (i > 0) os << "; ";
    os << "shard " << failed[i] << ": ";
    try {
      std::rethrow_exception(errors[failed[i]]);
    } catch (const std::exception& e) {
      os << e.what();
    } catch (...) {
      os << "unknown exception";
    }
  }
  if (failed.size() > kMaxDetail)
    os << "; (+" << failed.size() - kMaxDetail << " more)";
  throw std::runtime_error(std::move(os).str());
}

}  // namespace cgn::par
