#include "traversal/hole_punch.hpp"

namespace cgn::traversal {

std::string_view to_string(PunchResult r) noexcept {
  switch (r) {
    case PunchResult::direct_both: return "direct (both ways)";
    case PunchResult::direct_one_way: return "direct (one way)";
    case PunchResult::relay_needed: return "relay needed";
  }
  return "?";
}

void RendezvousServer::install(sim::Network& net) {
  net.add_local_address(host_, address_);
  net.register_address(address_, host_, net.root());
  net.set_receiver(host_, [this](sim::Network& n, const sim::Packet& p) {
    handle(n, p);
  });
}

void RendezvousServer::handle(sim::Network& net, const sim::Packet& pkt) {
  const auto* msg = std::any_cast<TraversalMessage>(&pkt.payload);
  if (!msg) return;
  const auto* reg = std::get_if<RendezvousRegister>(msg);
  if (!reg || reg->peer_index < 0 || reg->peer_index > 1) return;

  Session& session = sessions_[reg->session];
  session.peer[reg->peer_index] = pkt.src;  // the NAT-external endpoint

  if (session.peer[0] && session.peer[1]) {
    // Tell each side about the other. The replies traverse the mappings the
    // registrations just created, so they pass every filtering policy.
    for (int i = 0; i < 2; ++i) {
      sim::Packet out = sim::Packet::udp(endpoint(), *session.peer[i]);
      out.payload =
          TraversalMessage{RendezvousPeerInfo{reg->session,
                                              *session.peer[1 - i]}};
      net.send(std::move(out), host_);
    }
  }
}

PunchResult punch(sim::Network& net, RendezvousServer& server, PunchPeer a,
                  PunchPeer b, std::uint64_t session, int rounds) {
  struct PeerState {
    std::optional<netcore::Endpoint> remote;  // from the rendezvous server
    bool got_probe = false;                   // direct packet arrived
  };
  PeerState state[2];
  PunchPeer peers[2] = {a, b};

  for (int i = 0; i < 2; ++i) {
    peers[i].demux->bind(
        peers[i].local.port,
        [&state, &net, &peers, i, session](sim::Network&,
                                           const sim::Packet& pkt) {
          const auto* msg = std::any_cast<TraversalMessage>(&pkt.payload);
          if (!msg) return;
          if (const auto* info = std::get_if<RendezvousPeerInfo>(msg)) {
            if (info->session == session) state[i].remote = info->peer;
            return;
          }
          if (const auto* probe = std::get_if<PunchProbe>(msg)) {
            if (probe->session != session) return;
            state[i].got_probe = true;
            if (!probe->ack) {
              // Ack straight back to the observed source.
              sim::Packet ack = sim::Packet::udp(peers[i].local, pkt.src);
              ack.payload =
                  TraversalMessage{PunchProbe{session, i, /*ack=*/true}};
              net.send(std::move(ack), peers[i].host);
            }
          }
        });
  }

  // (1) + (2): register; the server answers with peer info once both are in.
  for (int i = 0; i < 2; ++i) {
    sim::Packet reg = sim::Packet::udp(peers[i].local, server.endpoint());
    reg.payload = TraversalMessage{RendezvousRegister{session, i}};
    net.send(std::move(reg), peers[i].host);
  }

  // (3): simultaneous punching. Each round both sides fire at the other's
  // external endpoint; outbound packets open/refresh their own NAT state so
  // later rounds can succeed where the first was filtered.
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < 2; ++i) {
      if (!state[i].remote) continue;
      sim::Packet probe = sim::Packet::udp(peers[i].local, *state[i].remote);
      probe.payload = TraversalMessage{PunchProbe{session, i, false}};
      net.send(std::move(probe), peers[i].host);
    }
  }

  for (int i = 0; i < 2; ++i) peers[i].demux->unbind(peers[i].local.port);

  if (state[0].got_probe && state[1].got_probe) return PunchResult::direct_both;
  if (state[0].got_probe || state[1].got_probe)
    return PunchResult::direct_one_way;
  return PunchResult::relay_needed;
}

}  // namespace cgn::traversal
