// UDP hole punching (RFC 5128 §3.3) over the simulated network.
//
// The paper's §6.5/§7 argument is that CGN mapping types directly determine
// whether subscribers can establish peer-to-peer connectivity: symmetric
// CGNs "rule out peer-to-peer connectivity, complicating modern protocols
// such as WebRTC that now need to rely on rendezvous servers". This module
// makes that claim measurable: a rendezvous server learns both peers'
// NAT-external endpoints, both peers then punch simultaneously, and the
// outcome (direct path / relay needed) follows from the real NAT behaviour
// on both paths.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <variant>

#include "netcore/ipv4.hpp"
#include "sim/demux.hpp"
#include "sim/network.hpp"

namespace cgn::traversal {

// --- wire messages -----------------------------------------------------------

/// Client -> rendezvous: register under a session id.
struct RendezvousRegister {
  std::uint64_t session = 0;
  int peer_index = 0;  ///< 0 or 1
};

/// Rendezvous -> client: the other side's observed (NAT-external) endpoint.
struct RendezvousPeerInfo {
  std::uint64_t session = 0;
  netcore::Endpoint peer;
};

/// Punch packet / acknowledgment exchanged directly between the peers.
struct PunchProbe {
  std::uint64_t session = 0;
  int from_index = 0;
  bool ack = false;
};

using TraversalMessage =
    std::variant<RendezvousRegister, RendezvousPeerInfo, PunchProbe>;

// --- rendezvous server -------------------------------------------------------

/// Matches two registrations per session id and tells each side the other's
/// observed endpoint (what a STUN+signalling service does for WebRTC).
class RendezvousServer {
 public:
  static constexpr std::uint16_t kPort = 3579;

  RendezvousServer(sim::NodeId host, netcore::Ipv4Address address)
      : host_(host), address_(address) {}

  void install(sim::Network& net);

  [[nodiscard]] netcore::Endpoint endpoint() const noexcept {
    return {address_, kPort};
  }

 private:
  void handle(sim::Network& net, const sim::Packet& pkt);

  struct Session {
    std::optional<netcore::Endpoint> peer[2];
  };

  sim::NodeId host_;
  netcore::Ipv4Address address_;
  std::unordered_map<std::uint64_t, Session> sessions_;
};

// --- hole punching driver ----------------------------------------------------

/// Outcome of one hole-punching attempt.
enum class PunchResult : std::uint8_t {
  direct_both,    ///< both directions verified (full P2P)
  direct_one_way, ///< only one direction came up
  relay_needed,   ///< no direct path; a relay (TURN-style) is required
};

[[nodiscard]] std::string_view to_string(PunchResult r) noexcept;

/// One endpoint of a punching attempt: a socket on a device.
struct PunchPeer {
  sim::NodeId host = sim::kNoNode;
  netcore::Endpoint local;
  sim::PortDemux* demux = nullptr;
};

/// Runs the RFC 5128 sequence for two peers: (1) both register with the
/// rendezvous server from the sockets they will punch from (creating NAT
/// mappings toward the server and teaching it their external endpoints),
/// (2) both learn the other's external endpoint, (3) both send punch
/// probes simultaneously for `rounds` rounds, acking what they receive.
/// Purely driver-side: all packets cross the simulated network and every
/// NAT on both paths.
[[nodiscard]] PunchResult punch(sim::Network& net, RendezvousServer& server,
                                PunchPeer a, PunchPeer b,
                                std::uint64_t session, int rounds = 3);

}  // namespace cgn::traversal
