// Registry of autonomous systems: region (RIR), eyeball-list membership
// (Spamhaus PBL / APNIC population analogues) and network type.
//
// Table 5 and Figure 6 of the paper slice CGN detection results by exactly
// these AS populations, so the registry is the denominator provider of the
// reproduction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netcore/ipv4.hpp"
#include "netcore/routing_table.hpp"

namespace cgn::netcore {

/// The five Regional Internet Registries.
enum class Rir : std::uint8_t { afrinic, apnic, arin, lacnic, ripe };

inline constexpr int kRirCount = 5;

[[nodiscard]] std::string_view to_string(Rir r) noexcept;

/// Static facts about one AS.
struct AsInfo {
  Asn asn = 0;
  std::string name;
  Rir region = Rir::arin;
  bool cellular = false;       ///< operates a cellular (mobile data) network
  bool pbl_eyeball = false;    ///< on the Spamhaus-PBL-derived eyeball list
  bool apnic_eyeball = false;  ///< on the APNIC-population-derived eyeball list

  [[nodiscard]] bool eyeball() const noexcept {
    return pbl_eyeball || apnic_eyeball;
  }
};

/// Lookup table of all routed ASes in the synthetic Internet.
class AsRegistry {
 public:
  /// Registers an AS. Throws std::invalid_argument on duplicate ASN.
  void add(AsInfo info);

  [[nodiscard]] bool contains(Asn asn) const noexcept {
    return index_.contains(asn);
  }
  /// Throws std::out_of_range for unknown ASNs.
  [[nodiscard]] const AsInfo& get(Asn asn) const;
  [[nodiscard]] const AsInfo* find(Asn asn) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return all_.size(); }
  [[nodiscard]] const std::vector<AsInfo>& all() const noexcept { return all_; }

  [[nodiscard]] std::size_t count_pbl_eyeball() const noexcept;
  [[nodiscard]] std::size_t count_apnic_eyeball() const noexcept;
  [[nodiscard]] std::size_t count_cellular() const noexcept;
  /// Eyeball ASes (per `which` list) within one region.
  [[nodiscard]] std::vector<Asn> eyeballs_in_region(Rir region,
                                                    bool use_apnic_list) const;

 private:
  std::vector<AsInfo> all_;
  std::unordered_map<Asn, std::size_t> index_;
};

}  // namespace cgn::netcore
