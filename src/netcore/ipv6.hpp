// IPv6 addressing primitives for the transition subsystem: a 128-bit
// address type, CIDR prefixes, and the RFC 6052 IPv4-embedded IPv6
// algorithm (pref64 embed/extract) used by NAT64, DNS64 and CLAT.
//
// The simulator's packet transport stays IPv4 (see DESIGN.md §14): v6
// addresses ride in an optional per-packet overlay, so nothing here is on
// the v4 hot path and the types optimize for clarity over micro-cost.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "netcore/ipv4.hpp"

namespace cgn::netcore {

/// A single IPv6 address stored as two host-order 64-bit halves: `hi` holds
/// bytes 0..7 (network order), `lo` bytes 8..15. Tiny value type, usable as
/// a map key and passable by value, mirroring Ipv4Address.
class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  constexpr Ipv6Address(std::uint64_t hi, std::uint64_t lo)
      : hi_(hi), lo_(lo) {}

  /// Parses RFC 4291 text ("64:ff9b::c000:201", "2001:db8::1"). Supports
  /// one "::" gap and a trailing dotted-quad. Throws std::invalid_argument
  /// on malformed input; use try_parse for a non-throwing variant.
  static Ipv6Address parse(std::string_view text);
  static std::optional<Ipv6Address> try_parse(std::string_view text) noexcept;

  [[nodiscard]] constexpr std::uint64_t hi() const noexcept { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const noexcept { return lo_; }

  /// The i-th byte in network order (0 = most significant).
  [[nodiscard]] constexpr std::uint8_t byte(int i) const noexcept {
    const std::uint64_t half = i < 8 ? hi_ : lo_;
    return static_cast<std::uint8_t>(half >> (8 * (7 - (i & 7))));
  }
  /// Returns a copy with byte `i` replaced by `v`.
  [[nodiscard]] constexpr Ipv6Address with_byte(int i,
                                               std::uint8_t v) const noexcept {
    const int shift = 8 * (7 - (i & 7));
    const std::uint64_t mask = ~(std::uint64_t{0xff} << shift);
    const std::uint64_t val = std::uint64_t{v} << shift;
    return i < 8 ? Ipv6Address((hi_ & mask) | val, lo_)
                 : Ipv6Address(hi_, (lo_ & mask) | val);
  }
  /// The i-th 16-bit group in network order (0..7).
  [[nodiscard]] constexpr std::uint16_t hextet(int i) const noexcept {
    const std::uint64_t half = i < 4 ? hi_ : lo_;
    return static_cast<std::uint16_t>(half >> (16 * (3 - (i & 3))));
  }

  [[nodiscard]] constexpr bool is_unspecified() const noexcept {
    return hi_ == 0 && lo_ == 0;
  }

  /// RFC 5952 canonical text: lowercase hex, longest zero run compressed.
  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const Ipv6Address&) const = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// A CIDR prefix over Ipv6Address; host bits normalized to zero.
class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() = default;
  Ipv6Prefix(Ipv6Address address, int length);

  /// Parses "64:ff9b::/96". Throws std::invalid_argument on malformed input.
  static Ipv6Prefix parse(std::string_view text);

  [[nodiscard]] Ipv6Address address() const noexcept { return address_; }
  [[nodiscard]] int length() const noexcept { return length_; }
  [[nodiscard]] bool contains(Ipv6Address a) const noexcept;
  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const Ipv6Prefix&) const = default;

 private:
  Ipv6Address address_;
  int length_ = 0;
};

/// Dual-stack host addressing: which families a host holds, and the
/// concrete addresses. A v6-only host (NAT64 line) has has_v4 == false even
/// though the simulator still routes its traffic over a v4 underlay handle.
struct DualStackAddress {
  Ipv4Address v4;
  Ipv6Address v6;
  bool has_v4 = false;
  bool has_v6 = false;

  auto operator<=>(const DualStackAddress&) const = default;
};

// ---- RFC 6052: IPv4-embedded IPv6 addresses ------------------------------

/// The six prefix lengths RFC 6052 defines for NAT64/DNS64 prefixes.
inline constexpr int kPref64Lengths[] = {32, 40, 48, 56, 64, 96};
inline constexpr int kPref64LengthCount = 6;

[[nodiscard]] constexpr bool is_valid_pref64_length(int length) noexcept {
  for (int l : kPref64Lengths)
    if (l == length) return true;
  return false;
}

/// The Well-Known Prefix 64:ff9b::/96.
[[nodiscard]] Ipv6Prefix well_known_pref64();

/// Embeds `v4` into `pref64` per RFC 6052 §2.2 (bits 64..71, the "u" octet,
/// stay zero for prefixes shorter than /96). Throws std::invalid_argument
/// if the prefix length is not one of kPref64Lengths.
[[nodiscard]] Ipv6Address pref64_embed(const Ipv6Prefix& pref64,
                                       Ipv4Address v4);

/// Inverse of pref64_embed: recovers the embedded IPv4 address, or nullopt
/// if `a` is not inside the prefix, the u octet is non-zero, or the prefix
/// length is invalid.
[[nodiscard]] std::optional<Ipv4Address> pref64_extract(
    const Ipv6Prefix& pref64, Ipv6Address a) noexcept;

}  // namespace cgn::netcore

template <>
struct std::hash<cgn::netcore::Ipv6Address> {
  std::size_t operator()(const cgn::netcore::Ipv6Address& a) const noexcept {
    // splitmix-style fold of the two halves.
    std::uint64_t x = a.hi() * 0x9e3779b97f4a7c15ULL;
    x ^= x >> 32;
    x += a.lo();
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 29;
    return static_cast<std::size_t>(x);
  }
};

template <>
struct std::hash<cgn::netcore::Ipv6Prefix> {
  std::size_t operator()(const cgn::netcore::Ipv6Prefix& p) const noexcept {
    std::size_t h = std::hash<cgn::netcore::Ipv6Address>{}(p.address());
    return h ^ (static_cast<std::size_t>(p.length()) * 0x9e3779b9u);
  }
};
