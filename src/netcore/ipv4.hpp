// IPv4 addressing primitives: addresses, endpoints, prefixes and the
// reserved-range taxonomy of Table 1 of the paper (RFC 1918 + RFC 6598).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cgn::netcore {

/// A single IPv4 address stored in host byte order.
///
/// The value type is deliberately tiny (a wrapped `uint32_t`) so it can be
/// used as a map key and passed by value everywhere.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("192.168.1.7"). Throws std::invalid_argument
  /// on malformed input; use try_parse for a non-throwing variant.
  static Ipv4Address parse(std::string_view text);
  static std::optional<Ipv4Address> try_parse(std::string_view text) noexcept;

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    if (i < 0 || i > 3) throw std::out_of_range("octet index");
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }
  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// Transport protocol of a flow or packet.
enum class Protocol : std::uint8_t { udp, tcp };

[[nodiscard]] std::string_view to_string(Protocol p) noexcept;

/// An (address, port) transport endpoint.
struct Endpoint {
  Ipv4Address address;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  [[nodiscard]] std::string to_string() const;
};

/// A CIDR prefix. `length` bits of `address` are significant; host bits are
/// normalized to zero at construction time.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  Ipv4Prefix(Ipv4Address address, int length);

  /// Parses "10.0.0.0/8". Throws std::invalid_argument on malformed input.
  static Ipv4Prefix parse(std::string_view text);

  [[nodiscard]] Ipv4Address address() const noexcept { return address_; }
  [[nodiscard]] int length() const noexcept { return length_; }
  [[nodiscard]] std::uint32_t mask() const noexcept {
    return length_ == 0 ? 0u : ~std::uint32_t{0} << (32 - length_);
  }
  [[nodiscard]] bool contains(Ipv4Address a) const noexcept {
    return (a.value() & mask()) == address_.value();
  }
  [[nodiscard]] bool contains(const Ipv4Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.address_);
  }
  /// Number of addresses covered (2^(32-length)), saturating at 2^32-1 for /0.
  [[nodiscard]] std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }
  /// The i-th address inside the prefix. Throws std::out_of_range if i >= size().
  [[nodiscard]] Ipv4Address at(std::uint64_t i) const;

  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const Ipv4Prefix&) const = default;

 private:
  Ipv4Address address_;
  int length_ = 0;
};

/// The reserved-for-internal-use ranges of Table 1 in the paper.
enum class ReservedRange : std::uint8_t {
  none,  ///< not a reserved address
  r192,  ///< 192.168.0.0/16  (RFC 1918, "commonly used in CPE")
  r172,  ///< 172.16.0.0/12   (RFC 1918)
  r10,   ///< 10.0.0.0/8      (RFC 1918)
  r100,  ///< 100.64.0.0/10   (RFC 6598, "for CGN deployments")
};

/// All four reserved ranges, in Table 1 order.
inline constexpr int kReservedRangeCount = 4;

[[nodiscard]] ReservedRange classify_reserved(Ipv4Address a) noexcept;
[[nodiscard]] bool is_reserved(Ipv4Address a) noexcept;
[[nodiscard]] Ipv4Prefix prefix_of(ReservedRange r);
/// Paper shorthand: "192X", "172X", "10X", "100X" (or "none").
[[nodiscard]] std::string_view shorthand(ReservedRange r) noexcept;

/// The /24 containing `a` — the unit of the paper's internal-address
/// diversity heuristics (Figure 5) and of its CPE-block filter.
[[nodiscard]] Ipv4Prefix slash24_of(Ipv4Address a) noexcept;

}  // namespace cgn::netcore

template <>
struct std::hash<cgn::netcore::Ipv4Address> {
  std::size_t operator()(const cgn::netcore::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<cgn::netcore::Endpoint> {
  std::size_t operator()(const cgn::netcore::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{e.address.value()} << 16) | e.port);
  }
};

template <>
struct std::hash<cgn::netcore::Ipv4Prefix> {
  std::size_t operator()(const cgn::netcore::Ipv4Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.address().value()} << 6) |
        static_cast<std::uint64_t>(p.length()));
  }
};
