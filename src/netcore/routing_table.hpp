// A global-routing-table model: longest-prefix-match over announced prefixes.
//
// The paper classifies observed addresses as "routed" or "unrouted" by
// consulting the global BGP table (Table 4: unrouted / routed match /
// routed mismatch). This binary-trie LPM structure plays that role for the
// synthetic Internet.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "netcore/ipv4.hpp"

namespace cgn::netcore {

/// An autonomous system number.
using Asn = std::uint32_t;

/// Longest-prefix-match table mapping announced prefixes to origin ASNs.
class RoutingTable {
 public:
  RoutingTable();
  RoutingTable(RoutingTable&&) noexcept;
  RoutingTable& operator=(RoutingTable&&) noexcept;
  ~RoutingTable();

  RoutingTable(const RoutingTable&) = delete;
  RoutingTable& operator=(const RoutingTable&) = delete;

  /// Announces `prefix` with origin `asn`. Re-announcing an identical prefix
  /// overwrites the previous origin (last announcement wins).
  void announce(const Ipv4Prefix& prefix, Asn asn);

  /// Withdraws an exact prefix. Returns false if the prefix was not announced.
  bool withdraw(const Ipv4Prefix& prefix);

  struct Route {
    Ipv4Prefix prefix;
    Asn origin = 0;
  };

  /// Longest-prefix match. Empty when no covering prefix is announced.
  [[nodiscard]] std::optional<Route> lookup(Ipv4Address a) const;

  /// True when some announced prefix covers `a`.
  [[nodiscard]] bool is_routed(Ipv4Address a) const { return lookup(a).has_value(); }

  /// Origin ASN for `a`, or nullopt when unrouted.
  [[nodiscard]] std::optional<Asn> origin_of(Ipv4Address a) const;

  [[nodiscard]] std::size_t prefix_count() const noexcept { return count_; }

  /// All announced routes (in trie order). Intended for reporting/tests.
  [[nodiscard]] std::vector<Route> routes() const;

 private:
  struct TrieNode;
  std::unique_ptr<TrieNode> root_;
  std::size_t count_ = 0;
};

}  // namespace cgn::netcore
