#include "netcore/ipv6.hpp"

#include <array>
#include <charconv>
#include <stdexcept>

namespace cgn::netcore {
namespace {

// Byte offsets (network order) of the four embedded IPv4 bytes for each
// RFC 6052 prefix length. Byte 8 — the reserved "u" octet — is skipped for
// every length that straddles it.
constexpr std::array<std::array<int, 4>, 6> kEmbedBytes{{
    {4, 5, 6, 7},     // /32
    {5, 6, 7, 9},     // /40
    {6, 7, 9, 10},    // /48
    {7, 9, 10, 11},   // /56
    {9, 10, 11, 12},  // /64
    {12, 13, 14, 15}, // /96
}};

const std::array<int, 4>* embed_bytes(int length) noexcept {
  for (int i = 0; i < kPref64LengthCount; ++i)
    if (kPref64Lengths[i] == length) return &kEmbedBytes[i];
  return nullptr;
}

bool parse_hextet(std::string_view text, std::uint16_t& out) noexcept {
  if (text.empty() || text.size() > 4) return false;
  std::uint32_t v = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v, 16);
  if (ec != std::errc{} || ptr != text.data() + text.size() || v > 0xffff)
    return false;
  out = static_cast<std::uint16_t>(v);
  return true;
}

}  // namespace

std::optional<Ipv6Address> Ipv6Address::try_parse(
    std::string_view text) noexcept {
  // Split on "::" (at most one occurrence), then each side on ':'. A
  // trailing dotted-quad contributes two hextets.
  if (text.empty()) return std::nullopt;
  std::size_t gap = text.find("::");
  if (gap != std::string_view::npos &&
      text.find("::", gap + 1) != std::string_view::npos)
    return std::nullopt;

  auto split_groups = [](std::string_view part,
                         std::array<std::uint16_t, 8>& groups, int& count,
                         bool allow_v4_tail) noexcept -> bool {
    if (part.empty()) return true;
    std::size_t pos = 0;
    while (true) {
      std::size_t next = part.find(':', pos);
      std::string_view tok = part.substr(
          pos, next == std::string_view::npos ? next : next - pos);
      bool last = next == std::string_view::npos;
      if (last && allow_v4_tail &&
          tok.find('.') != std::string_view::npos) {
        auto v4 = Ipv4Address::try_parse(tok);
        if (!v4 || count > 6) return false;
        groups[count++] = static_cast<std::uint16_t>(v4->value() >> 16);
        groups[count++] = static_cast<std::uint16_t>(v4->value() & 0xffff);
        return true;
      }
      std::uint16_t h = 0;
      if (!parse_hextet(tok, h) || count >= 8) return false;
      groups[count++] = h;
      if (last) return true;
      pos = next + 1;
    }
  };

  std::array<std::uint16_t, 8> head{};
  std::array<std::uint16_t, 8> tail{};
  int nhead = 0;
  int ntail = 0;
  if (gap == std::string_view::npos) {
    if (!split_groups(text, head, nhead, /*allow_v4_tail=*/true) ||
        nhead != 8)
      return std::nullopt;
  } else {
    if (!split_groups(text.substr(0, gap), head, nhead, false))
      return std::nullopt;
    if (!split_groups(text.substr(gap + 2), tail, ntail, true))
      return std::nullopt;
    // "::" stands for at least one zero group.
    if (nhead + ntail > 7) return std::nullopt;
  }

  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < nhead; ++i) groups[static_cast<std::size_t>(i)] = head[static_cast<std::size_t>(i)];
  for (int i = 0; i < ntail; ++i)
    groups[static_cast<std::size_t>(8 - ntail + i)] = tail[static_cast<std::size_t>(i)];

  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | groups[static_cast<std::size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | groups[static_cast<std::size_t>(i)];
  return Ipv6Address(hi, lo);
}

Ipv6Address Ipv6Address::parse(std::string_view text) {
  auto a = try_parse(text);
  if (!a)
    throw std::invalid_argument("bad IPv6 address: " + std::string(text));
  return *a;
}

std::string Ipv6Address::to_string() const {
  // RFC 5952: compress the longest run (>= 2) of zero hextets.
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (hextet(i) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && hextet(j) == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    if (best_start >= 0 && i == best_start) {
      out += i == 0 ? "::" : ":";
      i += best_len - 1;
      if (i == 7) out += ":";
      continue;
    }
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, hextet(i), 16);
    out.append(buf, ptr);
    if (i != 7) out += ':';
  }
  return out;
}

Ipv6Prefix::Ipv6Prefix(Ipv6Address address, int length) : length_(length) {
  if (length < 0 || length > 128)
    throw std::invalid_argument("bad IPv6 prefix length");
  std::uint64_t hi_mask =
      length >= 64 ? ~std::uint64_t{0}
                   : (length == 0 ? 0 : ~std::uint64_t{0} << (64 - length));
  std::uint64_t lo_mask =
      length <= 64 ? 0
                   : ~std::uint64_t{0} << (128 - length);
  address_ = Ipv6Address(address.hi() & hi_mask, address.lo() & lo_mask);
}

Ipv6Prefix Ipv6Prefix::parse(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos)
    throw std::invalid_argument("bad IPv6 prefix: " + std::string(text));
  Ipv6Address addr = Ipv6Address::parse(text.substr(0, slash));
  std::string_view len_text = text.substr(slash + 1);
  int length = -1;
  auto [ptr, ec] = std::from_chars(len_text.data(),
                                   len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size())
    throw std::invalid_argument("bad IPv6 prefix: " + std::string(text));
  return Ipv6Prefix(addr, length);
}

bool Ipv6Prefix::contains(Ipv6Address a) const noexcept {
  std::uint64_t hi_mask =
      length_ >= 64 ? ~std::uint64_t{0}
                    : (length_ == 0 ? 0 : ~std::uint64_t{0} << (64 - length_));
  std::uint64_t lo_mask =
      length_ <= 64 ? 0 : ~std::uint64_t{0} << (128 - length_);
  return (a.hi() & hi_mask) == address_.hi() &&
         (a.lo() & lo_mask) == address_.lo();
}

std::string Ipv6Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

Ipv6Prefix well_known_pref64() {
  return Ipv6Prefix(Ipv6Address(0x0064ff9b00000000ULL, 0), 96);
}

Ipv6Address pref64_embed(const Ipv6Prefix& pref64, Ipv4Address v4) {
  const auto* bytes = embed_bytes(pref64.length());
  if (!bytes)
    throw std::invalid_argument("pref64 length must be one of /32 /40 /48 "
                                "/56 /64 /96, got /" +
                                std::to_string(pref64.length()));
  Ipv6Address a = pref64.address();
  for (int i = 0; i < 4; ++i)
    a = a.with_byte((*bytes)[static_cast<std::size_t>(i)],
                    v4.octet(i));
  return a;
}

std::optional<Ipv4Address> pref64_extract(const Ipv6Prefix& pref64,
                                          Ipv6Address a) noexcept {
  const auto* bytes = embed_bytes(pref64.length());
  if (!bytes || !pref64.contains(a)) return std::nullopt;
  // The reserved "u" octet (byte 8) must be zero whenever it sits in the
  // suffix; for /96 the prefix itself covers it.
  if (pref64.length() < 96 && a.byte(8) != 0) return std::nullopt;
  return Ipv4Address(a.byte((*bytes)[0]), a.byte((*bytes)[1]),
                     a.byte((*bytes)[2]), a.byte((*bytes)[3]));
}

}  // namespace cgn::netcore
