#include "netcore/ipv4.hpp"

#include <array>
#include <charconv>

namespace cgn::netcore {

std::optional<Ipv4Address> Ipv4Address::try_parse(
    std::string_view text) noexcept {
  std::array<std::uint32_t, 4> octets{};
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (p == end) return std::nullopt;
    auto [next, ec] = std::from_chars(p, end, octets[i]);
    if (ec != std::errc{} || next == p || octets[i] > 255) return std::nullopt;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Address(static_cast<std::uint8_t>(octets[0]),
                     static_cast<std::uint8_t>(octets[1]),
                     static_cast<std::uint8_t>(octets[2]),
                     static_cast<std::uint8_t>(octets[3]));
}

Ipv4Address Ipv4Address::parse(std::string_view text) {
  auto a = try_parse(text);
  if (!a) throw std::invalid_argument("bad IPv4 address: " + std::string(text));
  return *a;
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::string_view to_string(Protocol p) noexcept {
  return p == Protocol::udp ? "udp" : "tcp";
}

std::string Endpoint::to_string() const {
  return address.to_string() + ":" + std::to_string(port);
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address address, int length) : length_(length) {
  if (length < 0 || length > 32)
    throw std::invalid_argument("prefix length out of range");
  address_ = Ipv4Address(address.value() & mask());
}

Ipv4Prefix Ipv4Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos)
    throw std::invalid_argument("missing '/' in prefix: " + std::string(text));
  auto addr = Ipv4Address::parse(text.substr(0, slash));
  int len = 0;
  auto len_text = text.substr(slash + 1);
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || next != len_text.data() + len_text.size())
    throw std::invalid_argument("bad prefix length: " + std::string(text));
  return {addr, len};
}

Ipv4Address Ipv4Prefix::at(std::uint64_t i) const {
  if (i >= size()) throw std::out_of_range("address index beyond prefix size");
  return Ipv4Address(address_.value() + static_cast<std::uint32_t>(i));
}

std::string Ipv4Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

namespace {
const Ipv4Prefix k192{Ipv4Address{192, 168, 0, 0}, 16};
const Ipv4Prefix k172{Ipv4Address{172, 16, 0, 0}, 12};
const Ipv4Prefix k10{Ipv4Address{10, 0, 0, 0}, 8};
const Ipv4Prefix k100{Ipv4Address{100, 64, 0, 0}, 10};
}  // namespace

ReservedRange classify_reserved(Ipv4Address a) noexcept {
  if (k192.contains(a)) return ReservedRange::r192;
  if (k172.contains(a)) return ReservedRange::r172;
  if (k10.contains(a)) return ReservedRange::r10;
  if (k100.contains(a)) return ReservedRange::r100;
  return ReservedRange::none;
}

bool is_reserved(Ipv4Address a) noexcept {
  return classify_reserved(a) != ReservedRange::none;
}

Ipv4Prefix prefix_of(ReservedRange r) {
  switch (r) {
    case ReservedRange::r192: return k192;
    case ReservedRange::r172: return k172;
    case ReservedRange::r10: return k10;
    case ReservedRange::r100: return k100;
    case ReservedRange::none: break;
  }
  throw std::invalid_argument("prefix_of(ReservedRange::none)");
}

std::string_view shorthand(ReservedRange r) noexcept {
  switch (r) {
    case ReservedRange::r192: return "192X";
    case ReservedRange::r172: return "172X";
    case ReservedRange::r10: return "10X";
    case ReservedRange::r100: return "100X";
    case ReservedRange::none: return "none";
  }
  return "none";
}

Ipv4Prefix slash24_of(Ipv4Address a) noexcept {
  return Ipv4Prefix{Ipv4Address{a.value() & 0xFFFFFF00u}, 24};
}

}  // namespace cgn::netcore
