#include "netcore/as_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace cgn::netcore {

std::string_view to_string(Rir r) noexcept {
  switch (r) {
    case Rir::afrinic: return "AFRINIC";
    case Rir::apnic: return "APNIC";
    case Rir::arin: return "ARIN";
    case Rir::lacnic: return "LACNIC";
    case Rir::ripe: return "RIPE";
  }
  return "?";
}

void AsRegistry::add(AsInfo info) {
  if (index_.contains(info.asn))
    throw std::invalid_argument("duplicate ASN " + std::to_string(info.asn));
  index_.emplace(info.asn, all_.size());
  all_.push_back(std::move(info));
}

const AsInfo& AsRegistry::get(Asn asn) const {
  auto it = index_.find(asn);
  if (it == index_.end())
    throw std::out_of_range("unknown ASN " + std::to_string(asn));
  return all_[it->second];
}

const AsInfo* AsRegistry::find(Asn asn) const noexcept {
  auto it = index_.find(asn);
  return it == index_.end() ? nullptr : &all_[it->second];
}

std::size_t AsRegistry::count_pbl_eyeball() const noexcept {
  return static_cast<std::size_t>(std::count_if(
      all_.begin(), all_.end(), [](const AsInfo& a) { return a.pbl_eyeball; }));
}

std::size_t AsRegistry::count_apnic_eyeball() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(all_.begin(), all_.end(),
                    [](const AsInfo& a) { return a.apnic_eyeball; }));
}

std::size_t AsRegistry::count_cellular() const noexcept {
  return static_cast<std::size_t>(std::count_if(
      all_.begin(), all_.end(), [](const AsInfo& a) { return a.cellular; }));
}

std::vector<Asn> AsRegistry::eyeballs_in_region(Rir region,
                                                bool use_apnic_list) const {
  std::vector<Asn> out;
  for (const auto& a : all_) {
    bool eyeball = use_apnic_list ? a.apnic_eyeball : a.pbl_eyeball;
    if (eyeball && a.region == region) out.push_back(a.asn);
  }
  return out;
}

}  // namespace cgn::netcore
