// Sequential allocators for carving address blocks out of the IPv4 space.
//
// The scenario generator uses one PoolAllocator over the public space to hand
// each ISP its public prefixes, and each NAT uses an AddressPool to draw its
// external addresses from (the paper's "NAT pooling", §3).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "netcore/ipv4.hpp"

namespace cgn::netcore {

/// Carves consecutive sub-prefixes out of one parent prefix.
class PrefixCarver {
 public:
  explicit PrefixCarver(Ipv4Prefix parent) : parent_(parent) {}

  /// Returns the next unallocated /`length` inside the parent prefix.
  /// Throws std::length_error when the parent is exhausted and
  /// std::invalid_argument when `length` is shorter than the parent.
  Ipv4Prefix next(int length);

  /// Addresses handed out so far.
  [[nodiscard]] std::uint64_t consumed() const noexcept { return consumed_; }
  [[nodiscard]] std::uint64_t remaining() const noexcept {
    return parent_.size() - consumed_;
  }
  [[nodiscard]] const Ipv4Prefix& parent() const noexcept { return parent_; }

 private:
  Ipv4Prefix parent_;
  std::uint64_t consumed_ = 0;
};

/// An ordered pool of individual addresses (a NAT's external pool, or an
/// ISP's per-subscriber assignment pool).
class AddressPool {
 public:
  AddressPool() = default;
  /// Pool covering every address of `prefix`, in order.
  explicit AddressPool(const Ipv4Prefix& prefix);
  explicit AddressPool(std::vector<Ipv4Address> addresses)
      : addresses_(std::move(addresses)) {}

  [[nodiscard]] std::size_t size() const noexcept { return addresses_.size(); }
  [[nodiscard]] bool empty() const noexcept { return addresses_.empty(); }
  [[nodiscard]] const Ipv4Address& at(std::size_t i) const {
    return addresses_.at(i);
  }
  [[nodiscard]] const std::vector<Ipv4Address>& addresses() const noexcept {
    return addresses_;
  }
  [[nodiscard]] bool contains(Ipv4Address a) const noexcept;

  /// Next address round-robin. Throws std::length_error when empty.
  Ipv4Address next();

 private:
  std::vector<Ipv4Address> addresses_;
  std::size_t cursor_ = 0;
};

}  // namespace cgn::netcore
