#include "netcore/routing_table.hpp"

namespace cgn::netcore {

struct RoutingTable::TrieNode {
  std::unique_ptr<TrieNode> child[2];
  std::optional<Asn> origin;  // set when a prefix terminates here
};

RoutingTable::RoutingTable() : root_(std::make_unique<TrieNode>()) {}
RoutingTable::RoutingTable(RoutingTable&&) noexcept = default;
RoutingTable& RoutingTable::operator=(RoutingTable&&) noexcept = default;
RoutingTable::~RoutingTable() = default;

namespace {
inline int bit_at(std::uint32_t value, int depth) {
  // depth 0 = most significant bit.
  return (value >> (31 - depth)) & 1u;
}
}  // namespace

void RoutingTable::announce(const Ipv4Prefix& prefix, Asn asn) {
  TrieNode* node = root_.get();
  for (int depth = 0; depth < prefix.length(); ++depth) {
    int b = bit_at(prefix.address().value(), depth);
    if (!node->child[b]) node->child[b] = std::make_unique<TrieNode>();
    node = node->child[b].get();
  }
  if (!node->origin) ++count_;
  node->origin = asn;
}

bool RoutingTable::withdraw(const Ipv4Prefix& prefix) {
  TrieNode* node = root_.get();
  for (int depth = 0; depth < prefix.length(); ++depth) {
    int b = bit_at(prefix.address().value(), depth);
    if (!node->child[b]) return false;
    node = node->child[b].get();
  }
  if (!node->origin) return false;
  node->origin.reset();
  --count_;
  return true;
}

std::optional<RoutingTable::Route> RoutingTable::lookup(Ipv4Address a) const {
  const TrieNode* node = root_.get();
  std::optional<Route> best;
  for (int depth = 0; depth <= 32; ++depth) {
    if (node->origin)
      best = Route{Ipv4Prefix{Ipv4Address{a.value()}, depth}, *node->origin};
    if (depth == 32) break;
    int b = bit_at(a.value(), depth);
    if (!node->child[b]) break;
    node = node->child[b].get();
  }
  return best;
}

std::optional<Asn> RoutingTable::origin_of(Ipv4Address a) const {
  auto r = lookup(a);
  if (!r) return std::nullopt;
  return r->origin;
}

std::vector<RoutingTable::Route> RoutingTable::routes() const {
  std::vector<Route> out;
  out.reserve(count_);
  struct Frame {
    const TrieNode* node;
    std::uint32_t addr;
    int depth;
  };
  std::vector<Frame> stack{{root_.get(), 0, 0}};
  while (!stack.empty()) {
    auto [node, addr, depth] = stack.back();
    stack.pop_back();
    if (node->origin)
      out.push_back({Ipv4Prefix{Ipv4Address{addr}, depth}, *node->origin});
    for (int b = 1; b >= 0; --b) {
      if (node->child[b]) {
        std::uint32_t next =
            b ? addr | (std::uint32_t{1} << (31 - depth)) : addr;
        stack.push_back({node->child[b].get(), next, depth + 1});
      }
    }
  }
  return out;
}

}  // namespace cgn::netcore
