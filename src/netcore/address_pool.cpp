#include "netcore/address_pool.hpp"

#include <algorithm>

namespace cgn::netcore {

Ipv4Prefix PrefixCarver::next(int length) {
  if (length < parent_.length())
    throw std::invalid_argument("requested prefix shorter than parent");
  Ipv4Prefix candidate{Ipv4Address{}, length};
  const std::uint64_t block = candidate.size();
  // Align the cursor to the block size.
  std::uint64_t start = (consumed_ + block - 1) / block * block;
  if (start + block > parent_.size())
    throw std::length_error("prefix carver exhausted: " + parent_.to_string());
  consumed_ = start + block;
  return Ipv4Prefix{parent_.at(start), length};
}

AddressPool::AddressPool(const Ipv4Prefix& prefix) {
  if (prefix.size() > (std::uint64_t{1} << 22))
    throw std::length_error("refusing to materialize pool > /10");
  addresses_.reserve(prefix.size());
  for (std::uint64_t i = 0; i < prefix.size(); ++i)
    addresses_.push_back(prefix.at(i));
}

bool AddressPool::contains(Ipv4Address a) const noexcept {
  return std::find(addresses_.begin(), addresses_.end(), a) != addresses_.end();
}

Ipv4Address AddressPool::next() {
  if (addresses_.empty()) throw std::length_error("empty address pool");
  Ipv4Address a = addresses_[cursor_];
  cursor_ = (cursor_ + 1) % addresses_.size();
  return a;
}

}  // namespace cgn::netcore
