#!/usr/bin/env bash
# Scale-sweep smoke gate (scripts/check.sh scale; the ci.yml scale-smoke job
# and the nightly workflow):
#
#  1. bench_scale_sweep over the requested scales (PR smoke sweeps 0.4 and
#     1; the nightly goes through 4) — each scale runs in its own child
#     process so peak RSS (/proc/self/status VmHWM) is per-scale;
#  2. the resulting BENCH_scale_sweep.json is schema-checked (every
#     scale_<tag>_rss_kib positive and paired with its ns_per_packet
#     sibling) and gated against bench/baselines/scale_sweep.json via
#     scripts/bench_compare.py: peak RSS or ns/packet growth beyond 10%
#     warns, beyond 30% fails. Scales the run didn't sweep are skipped,
#     so the smoke subset still gates against the full committed baseline.
#
# The JSON artifact lands in <builddir>/scale-smoke/ for upload.
#
# Usage: scripts/scale_smoke.sh [builddir] [scales]
#        scripts/scale_smoke.sh                 # build, scales 0.4,1
#        scripts/scale_smoke.sh build 0.4,1,4   # nightly sweep
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SCALES="${2:-0.4,1}"
BENCH="$BUILD/bench"
OUT="$BUILD/scale-smoke"
[[ -x "$BENCH/bench_scale_sweep" ]] || {
  echo "scale_smoke: $BENCH/bench_scale_sweep not built" >&2; exit 2; }
rm -rf "$OUT"
mkdir -p "$OUT"

echo "== scale-smoke: bench_scale_sweep over scales $SCALES =="
CGN_SCALE_SWEEP_SCALES="$SCALES" CGN_BENCH_JSON_DIR="$OUT" \
  "$BENCH/bench_scale_sweep" | tee "$OUT/stdout.txt"

echo "== scale-smoke: schema check =="
python3 scripts/bench_compare.py --schema-check \
  "$OUT/BENCH_scale_sweep.json"

echo "== scale-smoke: peak-RSS gate vs bench/baselines/scale_sweep.json =="
python3 scripts/bench_compare.py bench/baselines/scale_sweep.json \
  "$OUT/BENCH_scale_sweep.json"

echo "== scale-smoke: green (artifacts in $OUT) =="
