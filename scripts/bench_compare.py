#!/usr/bin/env python3
"""Compare fresh bench_perf_micro runs against the committed baseline.

Usage:
    scripts/bench_compare.py BASELINE FRESH [FRESH2 FRESH3 ...]

BASELINE is bench/baselines/perf_micro.json (committed); each FRESH is a
BENCH_perf_micro.json produced by a run of build/bench/bench_perf_micro.
Pass several fresh files (CI passes three) and the per-metric median is
compared, which keeps one noisy run from tripping the gate.

Checks, in order of severity:
  * figures must carry parallel_identical == 1 (1-vs-4-worker campaign
    fingerprints byte-identical) — hard fail otherwise;
  * echo_roundtrip_ns and every top-level profiler phase wall time are
    compared against the baseline: a regression above WARN_PCT prints a
    warning, one above FAIL_PCT on echo_roundtrip_ns or total phase wall
    time fails the gate (exit 1).

Timings below NOISE_FLOOR_S are reported but never gate: on shared CI
runners, sub-50ms phases are dominated by scheduler noise.
"""

import json
import statistics
import sys

WARN_PCT = 10.0
FAIL_PCT = 30.0
NOISE_FLOOR_S = 0.05


def load(path):
    with open(path) as f:
        return json.load(f)


def phase_walls(doc):
    """Top-level (depth 0) profiler phases: name -> wall seconds."""
    return {
        p["phase"]: p["wall_s"]
        for p in doc.get("obs", {}).get("phases", [])
        if p.get("depth") == 0
    }


def median_fresh(docs):
    figures = {}
    for key in docs[0].get("figures", {}):
        vals = [d["figures"][key] for d in docs if key in d.get("figures", {})]
        figures[key] = statistics.median(vals)
    phases = {}
    for name in phase_walls(docs[0]):
        vals = [phase_walls(d).get(name) for d in docs]
        vals = [v for v in vals if v is not None]
        if vals:
            phases[name] = statistics.median(vals)
    return figures, phases


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = load(argv[1])
    fresh_docs = [load(p) for p in argv[2:]]
    figures, phases = median_fresh(fresh_docs)

    failed = False
    warned = False

    ident = figures.get("parallel_identical")
    if ident != 1:
        print(f"FAIL parallel_identical = {ident} (1-vs-4-worker campaign "
              "fingerprints diverged: determinism is broken)")
        failed = True
    else:
        print("ok   parallel_identical = 1 (fingerprints byte-identical)")

    def compare(label, base, fresh, *, gates, floor=0.0):
        nonlocal failed, warned
        if base is None or fresh is None:
            print(f"skip {label}: missing from "
                  f"{'baseline' if base is None else 'fresh run'}")
            return
        delta = 100.0 * (fresh - base) / base if base else 0.0
        line = f"{label}: baseline {base:.6g}, fresh {fresh:.6g} ({delta:+.1f}%)"
        if max(base, fresh) < floor:
            print(f"ok   {line} [below {floor}s noise floor, not gated]")
        elif delta > FAIL_PCT and gates:
            print(f"FAIL {line} > {FAIL_PCT:.0f}%")
            failed = True
        elif delta > WARN_PCT:
            print(f"WARN {line} > {WARN_PCT:.0f}%")
            warned = True
        else:
            print(f"ok   {line}")

    compare("figures.echo_roundtrip_ns",
            baseline.get("figures", {}).get("echo_roundtrip_ns"),
            figures.get("echo_roundtrip_ns"), gates=True)

    base_phases = phase_walls(baseline)
    for name in sorted(set(base_phases) | set(phases)):
        # Individual phases warn; only the total (summed) wall time fails.
        compare(f"phase.{name}", base_phases.get(name), phases.get(name),
                gates=False, floor=NOISE_FLOOR_S)
    compare("phase total wall_s",
            sum(base_phases.values()) if base_phases else None,
            sum(phases.values()) if phases else None, gates=True)

    if failed:
        print("bench_compare: FAIL")
        return 1
    print("bench_compare: OK" + (" (with warnings)" if warned else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
