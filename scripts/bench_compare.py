#!/usr/bin/env python3
"""Compare fresh bench_perf_micro runs against the committed baseline.

Usage:
    scripts/bench_compare.py BASELINE FRESH [FRESH2 FRESH3 ...]
    scripts/bench_compare.py --schema-check FILE [FILE2 ...]

BASELINE is bench/baselines/perf_micro.json (committed); each FRESH is a
BENCH_perf_micro.json produced by a run of build/bench/bench_perf_micro.
Pass several fresh files (CI passes three) and the per-metric median is
compared, which keeps one noisy run from tripping the gate.

--schema-check validates that each FILE is a well-formed bench JSON
(required keys, figure/phase shapes) without comparing anything; use it to
vet a freshly regenerated baseline before committing it. Note the "super"
block is optional: baselines recorded before supervision existed are still
valid. Likewise optional: the top-level "observatory" block and the
p50/p90/p99 quantiles on obs.metrics histograms (both introduced with the
streaming observatory) — when present they are shape-checked (numeric,
p50 <= p90 <= p99), when absent the file still validates. Figures from
the transition family (bench_fig14_transition) get one extra check:
every detect_acc_* entry must be a fraction in [0, 1]. Push-ingestion
soak files (bench_soak_ingest, figures named ingest_*) get their own:
every ingest_* figure must be non-negative, ingest_figure_mismatches
must be exactly 0 (a mismatch is broken streaming==batch determinism,
not noise), and ingest_max_lag must not exceed ingest_queue_capacity
(the bounded-queue contract).

Scale-sweep files (bench == "scale_sweep", from bench_scale_sweep) take a
different comparison path: for every scale tag present on both sides the
peak RSS (scale_<tag>_rss_kib) and hot-path latency
(scale_<tag>_ns_per_packet) are gated (warn >10%, fail >30% growth vs
bench/baselines/scale_sweep.json); build/materialize walls only warn. The
schema check additionally requires every rss figure to be a positive
number paired with a ns_per_packet figure for the same tag. A smoke run
that only sweeps the small scales still gates — tags missing from the
fresh file are skipped, not failed.

Bad input (missing file, malformed JSON, a baseline that is not a bench
JSON) exits 2 with a one-line diagnosis, never a traceback; a genuine
perf regression exits 1.

Checks, in order of severity:
  * figures must carry parallel_identical == 1 (1-vs-4-worker campaign
    fingerprints byte-identical) — hard fail otherwise;
  * parallel speedup gate: on a machine with >= SPEEDUP_MIN_CORES usable
    cores (both the baseline AND the fresh run must report
    hardware_cores >= 4, so a 4-core baseline never gates a 1-core
    runner), netalyzr_speedup_4t must stay >= SPEEDUP_FAIL (2.5), and
    warns below SPEEDUP_WARN (3.0). On narrower machines wall-clock
    speedup is physically capped at ~1.0, so the gate switches to
    netalyzr_cpu_efficiency_4t — CPU seconds at 1 worker over CPU
    seconds at 4 — which catches the scheduler *burning* extra work
    (spinning, redundant merges) even where it cannot win wall-clock;
  * echo_roundtrip_ns and every top-level profiler phase wall time are
    compared against the baseline: a regression above WARN_PCT prints a
    warning, one above FAIL_PCT on echo_roundtrip_ns or total phase wall
    time fails the gate (exit 1).

Timings below NOISE_FLOOR_S are reported but never gate: on shared CI
runners, sub-50ms phases are dominated by scheduler noise.
"""

import json
import statistics
import sys

WARN_PCT = 10.0
FAIL_PCT = 30.0
NOISE_FLOOR_S = 0.05

# Parallel scaling gate (ISSUE 7). Wall-clock speedup only gates on
# machines that can physically express it; below SPEEDUP_MIN_CORES the
# CPU-efficiency figure gates instead (a work-conserving scheduler keeps
# it near 1.0 at any core count).
SPEEDUP_MIN_CORES = 4
SPEEDUP_FAIL = 2.5
SPEEDUP_WARN = 3.0
CPU_EFFICIENCY_FAIL = 0.60
CPU_EFFICIENCY_WARN = 0.80


class BadInput(Exception):
    """A user-input problem: report one line and exit 2, no traceback."""


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        raise BadInput(f"{path}: cannot read ({e.strerror or e})")
    except json.JSONDecodeError as e:
        raise BadInput(f"{path}: malformed JSON at line {e.lineno} "
                       f"column {e.colno}: {e.msg}")


def scale_tags(figures):
    """Scale tags ("0_4", "1", ...) recorded in a figures dict, in figure
    order — each tag names one bench_scale_sweep child sample."""
    tags = []
    for name in figures:
        if name.startswith("scale_") and name.endswith("_rss_kib"):
            tags.append(name[len("scale_"):-len("_rss_kib")])
    return tags


# Required top-level shape of every BENCH_<name>.json. The "super" block is
# deliberately absent: it was introduced after the first baselines were
# recorded, and older files must keep validating.
SCHEMA = {
    "bench": str,
    "scale": (int, float),
    "seed": int,
    "threads": int,
    "figures": dict,
    "obs": dict,
}


def check_schema(doc, path):
    """Raise BadInput with a precise message if doc is not a bench JSON."""
    if not isinstance(doc, dict):
        raise BadInput(f"{path}: top level is {type(doc).__name__}, "
                       "expected a JSON object")
    for key, want in SCHEMA.items():
        if key not in doc:
            raise BadInput(f"{path}: missing required key \"{key}\"")
        if not isinstance(doc[key], want):
            raise BadInput(f"{path}: \"{key}\" is "
                           f"{type(doc[key]).__name__}, expected "
                           f"{want.__name__ if isinstance(want, type) else 'number'}")
    for name, value in doc["figures"].items():
        if not isinstance(value, (int, float)):
            raise BadInput(f"{path}: figure \"{name}\" is "
                           f"{type(value).__name__}, expected a number")
        # The transition family (bench_fig14_transition and the
        # observatory's fig14_transition set) reports detection accuracy
        # per mechanism; an accuracy outside [0, 1] means the classifier's
        # bookkeeping (correct > truth) broke, not a perf regression.
        if name.startswith("detect_acc_") and not 0.0 <= value <= 1.0:
            raise BadInput(f"{path}: figure \"{name}\" = {value} is outside "
                           "[0, 1] — detection accuracies are fractions")
    # Scale-sweep figures come in per-scale groups: a peak-RSS sample that
    # is zero or negative means the /proc/self/status read failed, and an
    # rss figure without its ns_per_packet sibling means the child's JSON
    # line was truncated. Both are recording bugs, not regressions.
    for tag in scale_tags(doc["figures"]):
        rss = doc["figures"][f"scale_{tag}_rss_kib"]
        if rss <= 0:
            raise BadInput(f"{path}: figure \"scale_{tag}_rss_kib\" = {rss} "
                           "— peak RSS must be a positive KiB count")
        ns_key = f"scale_{tag}_ns_per_packet"
        if ns_key not in doc["figures"]:
            raise BadInput(f"{path}: figure \"scale_{tag}_rss_kib\" has no "
                           f"\"{ns_key}\" sibling — truncated sweep sample")
        if doc["figures"][ns_key] < 0:
            raise BadInput(f"{path}: figure \"{ns_key}\" = "
                           f"{doc['figures'][ns_key]} is negative")
    # Push-ingestion soak figures: counters can never go negative, a
    # recorded figure mismatch means streaming==batch determinism broke,
    # and lag above the configured queue capacity means the "bounded"
    # queue was not.
    figs = doc["figures"]
    ingest_figs = [name for name in figs if name.startswith("ingest_")]
    if ingest_figs:
        for name in ingest_figs:
            if figs[name] < 0:
                raise BadInput(f"{path}: figure \"{name}\" = {figs[name]} "
                               "is negative — ingest counters only grow")
        if figs.get("ingest_figure_mismatches", 0) != 0:
            raise BadInput(f"{path}: ingest_figure_mismatches = "
                           f"{figs['ingest_figure_mismatches']} — push-fed "
                           "figures diverged from the batch ground truth")
        cap = figs.get("ingest_queue_capacity")
        lag = figs.get("ingest_max_lag")
        if cap is not None and lag is not None and lag > cap:
            raise BadInput(f"{path}: ingest_max_lag {lag} exceeds "
                           f"ingest_queue_capacity {cap} — the ingest "
                           "queue is not bounded")
    obs = doc["obs"]
    for key in ("metrics", "phases"):
        if key not in obs:
            raise BadInput(f"{path}: missing required key \"obs.{key}\"")
    for i, p in enumerate(obs["phases"]):
        if not isinstance(p, dict) or not {"phase", "wall_s", "depth"} <= set(p):
            raise BadInput(f"{path}: obs.phases[{i}] lacks "
                           "phase/wall_s/depth")
    check_quantiles(doc, path)
    if "observatory" in doc and not isinstance(doc["observatory"], dict):
        raise BadInput(f"{path}: \"observatory\" is "
                       f"{type(doc['observatory']).__name__}, expected an "
                       "object")


def check_quantiles(doc, path):
    """Histogram quantiles are optional (older baselines predate them),
    but when present they must be numbers and ordered p50 <= p90 <= p99."""
    metrics = doc["obs"].get("metrics", {})
    if not isinstance(metrics, dict):
        raise BadInput(f"{path}: obs.metrics is "
                       f"{type(metrics).__name__}, expected an object")
    for name, h in metrics.get("histograms", {}).items():
        if not isinstance(h, dict):
            raise BadInput(f"{path}: obs.metrics.histograms[\"{name}\"] is "
                           f"{type(h).__name__}, expected an object")
        quantiles = [k for k in ("p50", "p90", "p99") if k in h]
        if not quantiles:
            continue  # legacy file recorded before quantile export
        if len(quantiles) != 3:
            raise BadInput(f"{path}: histogram \"{name}\" has only "
                           f"{quantiles} — p50/p90/p99 come as a set")
        for q in quantiles:
            if not isinstance(h[q], (int, float)):
                raise BadInput(f"{path}: histogram \"{name}\".{q} is "
                               f"{type(h[q]).__name__}, expected a number")
        if not (h["p50"] <= h["p90"] <= h["p99"]):
            raise BadInput(f"{path}: histogram \"{name}\" quantiles are not "
                           f"monotone: p50={h['p50']} p90={h['p90']} "
                           f"p99={h['p99']}")


def check_speedup(baseline, figures):
    """Gate parallel scaling: wall-clock speedup where the machine allows
    it, CPU efficiency (work conservation) where it does not. Returns
    (failed, warned)."""
    base_cores = baseline.get("figures", {}).get("hardware_cores")
    fresh_cores = figures.get("hardware_cores")
    speedup = figures.get("netalyzr_speedup_4t")
    efficiency = figures.get("netalyzr_cpu_efficiency_4t")

    wide = (isinstance(base_cores, (int, float)) and
            isinstance(fresh_cores, (int, float)) and
            base_cores >= SPEEDUP_MIN_CORES and
            fresh_cores >= SPEEDUP_MIN_CORES)
    if wide:
        if speedup is None:
            print("FAIL netalyzr_speedup_4t missing from fresh figures")
            return True, False
        line = (f"netalyzr_speedup_4t = {speedup:.3f} "
                f"({fresh_cores:.0f} cores)")
        if speedup < SPEEDUP_FAIL:
            print(f"FAIL {line} < {SPEEDUP_FAIL}")
            return True, False
        if speedup < SPEEDUP_WARN:
            print(f"WARN {line} < {SPEEDUP_WARN}")
            return False, True
        print(f"ok   {line}")
        return False, False

    # Narrow machine (or cores unrecorded): wall-clock speedup tops out at
    # ~1.0 regardless of scheduler quality, so gate work conservation
    # instead. efficiency = cpu_1t / cpu_4t; a pool that spins or repeats
    # work drags it toward 0.
    cores_note = (f"baseline {base_cores}, fresh {fresh_cores}"
                  if base_cores is not None or fresh_cores is not None
                  else "hardware_cores unrecorded")
    print(f"skip netalyzr_speedup_4t wall gate: needs >= "
          f"{SPEEDUP_MIN_CORES} cores on both sides ({cores_note})")
    if efficiency is None:
        print("skip netalyzr_cpu_efficiency_4t: not recorded")
        return False, False
    line = f"netalyzr_cpu_efficiency_4t = {efficiency:.3f}"
    if efficiency < CPU_EFFICIENCY_FAIL:
        print(f"FAIL {line} < {CPU_EFFICIENCY_FAIL} (pool burns CPU)")
        return True, False
    if efficiency < CPU_EFFICIENCY_WARN:
        print(f"WARN {line} < {CPU_EFFICIENCY_WARN}")
        return False, True
    print(f"ok   {line}")
    return False, False


def compare_scale(baseline, figures):
    """Gate a scale-sweep run: per-scale peak RSS and hot-path latency
    against the committed baseline (warn >WARN_PCT, fail >FAIL_PCT growth);
    build/materialize walls warn only (shared-runner noise). Returns the
    process exit code."""
    failed = False
    warned = False
    base_figs = baseline.get("figures", {})

    def compare(label, base, fresh, *, gates):
        nonlocal failed, warned
        if fresh is None:
            print(f"skip {label}: not swept in this run")
            return
        if base is None:
            print(f"ok   {label}: fresh {fresh:.6g} (new scale, no baseline "
                  "— not gated)")
            return
        delta = 100.0 * (fresh - base) / base if base else 0.0
        line = f"{label}: baseline {base:.6g}, fresh {fresh:.6g} ({delta:+.1f}%)"
        if delta > FAIL_PCT and gates:
            print(f"FAIL {line} > {FAIL_PCT:.0f}%")
            failed = True
        elif delta > WARN_PCT:
            print(f"WARN {line} > {WARN_PCT:.0f}%")
            warned = True
        else:
            print(f"ok   {line}")

    tags = scale_tags(base_figs)
    for tag in scale_tags(figures):
        if tag not in tags:
            tags.append(tag)
    for tag in tags:
        for metric, gates in (("rss_kib", True), ("ns_per_packet", True),
                              ("build_s", False), ("materialize_s", False)):
            key = f"scale_{tag}_{metric}"
            compare(f"figures.{key}", base_figs.get(key), figures.get(key),
                    gates=gates)
        subs = figures.get(f"scale_{tag}_subscribers")
        if subs is not None:
            print(f"info scale {tag.replace('_', '.')}: "
                  f"{subs:.0f} subscriber lines")

    if failed:
        print("bench_compare: FAIL")
        return 1
    print("bench_compare: OK" + (" (with warnings)" if warned else ""))
    return 0


def phase_walls(doc):
    """Top-level (depth 0) profiler phases: name -> wall seconds."""
    return {
        p["phase"]: p["wall_s"]
        for p in doc.get("obs", {}).get("phases", [])
        if p.get("depth") == 0
    }


def median_fresh(docs):
    figures = {}
    for key in docs[0].get("figures", {}):
        vals = [d["figures"][key] for d in docs if key in d.get("figures", {})]
        figures[key] = statistics.median(vals)
    phases = {}
    for name in phase_walls(docs[0]):
        vals = [phase_walls(d).get(name) for d in docs]
        vals = [v for v in vals if v is not None]
        if vals:
            phases[name] = statistics.median(vals)
    return figures, phases


def main(argv):
    if len(argv) >= 2 and argv[1] == "--schema-check":
        if len(argv) < 3:
            print("bench_compare: --schema-check needs at least one file",
                  file=sys.stderr)
            return 2
        for path in argv[2:]:
            check_schema(load(path), path)
            print(f"ok   {path}: schema valid")
        return 0

    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = load(argv[1])
    check_schema(baseline, argv[1])
    fresh_docs = []
    for path in argv[2:]:
        doc = load(path)
        check_schema(doc, path)
        fresh_docs.append(doc)
    figures, phases = median_fresh(fresh_docs)

    # Scale-sweep files carry none of the perf_micro machinery (no
    # parallel_identical, no phase profile worth gating) — they get the
    # per-scale RSS/latency comparison instead.
    if baseline.get("bench") == "scale_sweep" or scale_tags(
            baseline.get("figures", {})):
        return compare_scale(baseline, figures)

    failed = False
    warned = False

    ident = figures.get("parallel_identical")
    if ident != 1:
        print(f"FAIL parallel_identical = {ident} (1-vs-4-worker campaign "
              "fingerprints diverged: determinism is broken)")
        failed = True
    else:
        print("ok   parallel_identical = 1 (fingerprints byte-identical)")

    def compare(label, base, fresh, *, gates, floor=0.0):
        nonlocal failed, warned
        if base is None or fresh is None:
            print(f"skip {label}: missing from "
                  f"{'baseline' if base is None else 'fresh run'}")
            return
        delta = 100.0 * (fresh - base) / base if base else 0.0
        line = f"{label}: baseline {base:.6g}, fresh {fresh:.6g} ({delta:+.1f}%)"
        if max(base, fresh) < floor:
            print(f"ok   {line} [below {floor}s noise floor, not gated]")
        elif delta > FAIL_PCT and gates:
            print(f"FAIL {line} > {FAIL_PCT:.0f}%")
            failed = True
        elif delta > WARN_PCT:
            print(f"WARN {line} > {WARN_PCT:.0f}%")
            warned = True
        else:
            print(f"ok   {line}")

    sp_failed, sp_warned = check_speedup(baseline, figures)
    failed = failed or sp_failed
    warned = warned or sp_warned

    compare("figures.echo_roundtrip_ns",
            baseline.get("figures", {}).get("echo_roundtrip_ns"),
            figures.get("echo_roundtrip_ns"), gates=True)

    base_phases = phase_walls(baseline)
    for name in sorted(set(base_phases) | set(phases)):
        # Individual phases warn; only the total (summed) wall time fails.
        compare(f"phase.{name}", base_phases.get(name), phases.get(name),
                gates=False, floor=NOISE_FLOOR_S)
    compare("phase total wall_s",
            sum(base_phases.values()) if base_phases else None,
            sum(phases.values()) if phases else None, gates=True)

    if failed:
        print("bench_compare: FAIL")
        return 1
    print("bench_compare: OK" + (" (with warnings)" if warned else ""))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BadInput as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        sys.exit(2)
