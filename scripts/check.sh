#!/usr/bin/env bash
# Repo gate, split into named stages so CI jobs and developers can run just
# the part they need:
#
#   format   clang-format --dry-run -Werror over src/ tests/ bench/
#   tier1    configure + build + full ctest (build/)
#   asan     full ctest under ASan+UBSan (build-asan/, -DCGN_SANITIZE=ON)
#   tsan     parallel-campaign ctest under TSan (build-tsan/,
#            -DCGN_SANITIZE=thread, CGN_THREADS=4)
#   bench    bench smoke: bench_perf_micro at 1 and 4 workers, fingerprints
#            byte-identical, phase timings vs bench/baselines/, plus the
#            fig01 and fig14 (transition) 1-vs-4-worker figure byte-compares
#            (see scripts/bench_smoke.sh and scripts/bench_compare.py)
#   scale    scale-sweep smoke: bench_scale_sweep at scales 0.4 and 1
#            (CGN_SCALE_STAGE_SCALES overrides; the nightly workflow passes
#            0.4,1,4), peak RSS and ns/packet gated against
#            bench/baselines/scale_sweep.json (see scripts/scale_smoke.sh)
#   recovery kill → resume differential smoke (build/): ctest -R
#            'SuperRecovery' serial and at 4 workers — resumed campaigns
#            must be byte-identical to uninterrupted ones
#   soak     observatory soak smoke: cgn_observatoryd streams the fig04 +
#            fig05 campaigns live; /metrics//health//trace are
#            schema-checked and /figures must equal the batch BENCH JSONs,
#            including after a kill → checkpoint-resume drill and a push
#            leg where an external cgn_feeder is kill -9'd mid-stream and
#            resumes from the server's cursor (see
#            scripts/obs_soak_smoke.sh and scripts/obs_scrape.py)
#
# Usage: scripts/check.sh [stage...]
#        scripts/check.sh                # format tier1 asan tsan (historical
#                                        # default; bench is opt-in)
#        scripts/check.sh --no-sanitize  # format tier1 (compat alias)
#        scripts/check.sh tier1 bench
set -euo pipefail
cd "$(dirname "$0")/.."

stage_format() {
  if command -v clang-format >/dev/null 2>&1; then
    echo "== format: clang-format --dry-run -Werror (src/ tests/ bench/) =="
    find src tests bench -name '*.hpp' -o -name '*.cpp' | \
      xargs clang-format --dry-run -Werror
  else
    echo "== format: clang-format not found, skipping =="
  fi
}

stage_tier1() {
  echo "== tier-1: configure + build + ctest (build/) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j "$(nproc)"
}

stage_asan() {
  echo "== sanitizers: ASan+UBSan build + ctest (build-asan/) =="
  cmake -B build-asan -S . -DCGN_SANITIZE=ON >/dev/null
  cmake --build build-asan -j --target cgn_tests
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
}

stage_tsan() {
  echo "== sanitizers: TSan build + parallel-campaign ctest (build-tsan/) =="
  cmake -B build-tsan -S . -DCGN_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target cgn_tests
  CGN_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
    -R 'RunShards|ConfiguredThreads|RngFork|ThreadClockScope|CampaignParallel|Fault|RouteCache|Super' \
    -j "$(nproc)"
}

stage_recovery() {
  echo "== recovery: kill → resume differential smoke (build/) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target cgn_tests
  # The differential inside each test already compares worker counts; the
  # CGN_THREADS sweep additionally exercises the default-thread plumbing.
  CGN_THREADS=1 ctest --test-dir build --output-on-failure -R 'SuperRecovery'
  CGN_THREADS=4 ctest --test-dir build --output-on-failure -R 'SuperRecovery'
}

stage_bench() {
  echo "== bench: perf-micro smoke (fingerprints + regression gate) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bench_perf_micro \
    --target bench_fig01_survey --target bench_fig14_transition
  scripts/bench_smoke.sh build
}

stage_scale() {
  echo "== scale: sweep smoke (peak-RSS + ns/packet gate) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bench_scale_sweep
  scripts/scale_smoke.sh build "${CGN_SCALE_STAGE_SCALES:-0.4,1}"
}

stage_soak() {
  echo "== soak: observatory stream smoke (live endpoint vs batch) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target cgn_observatoryd --target cgn_feeder \
    --target bench_fig04_clusters --target bench_fig05_netalyzr_candidates
  scripts/obs_soak_smoke.sh build
}

if [[ $# -eq 0 ]]; then
  stages=(format tier1 asan tsan)
elif [[ "$1" == "--no-sanitize" ]]; then
  stages=(format tier1)
else
  stages=("$@")
fi

for stage in "${stages[@]}"; do
  case "$stage" in
    format|tier1|asan|tsan|bench|scale|recovery|soak) "stage_$stage" ;;
    *) echo "check.sh: unknown stage '$stage'" >&2; exit 2 ;;
  esac
done

echo "== check.sh: all green (${stages[*]}) =="
