#!/usr/bin/env bash
# Tier-1 gate: configure + build + full ctest, then the same test suite
# under ASan+UBSan (-DCGN_SANITIZE=ON) and the parallel-campaign tests
# under TSan (-DCGN_SANITIZE=thread), each in a separate build tree.
#
# Usage: scripts/check.sh [--no-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=1
[[ "${1:-}" == "--no-sanitize" ]] && SANITIZE=0

if command -v clang-format >/dev/null 2>&1; then
  echo "== format: clang-format --dry-run -Werror (src/ tests/ bench/) =="
  find src tests bench -name '*.hpp' -o -name '*.cpp' | \
    xargs clang-format --dry-run -Werror
else
  echo "== format: clang-format not found, skipping =="
fi

echo "== tier-1: configure + build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$SANITIZE" == 1 ]]; then
  echo "== sanitizers: ASan+UBSan build + ctest (build-asan/) =="
  cmake -B build-asan -S . -DCGN_SANITIZE=ON >/dev/null
  cmake --build build-asan -j --target cgn_tests
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

  echo "== sanitizers: TSan build + parallel-campaign ctest (build-tsan/) =="
  cmake -B build-tsan -S . -DCGN_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target cgn_tests
  CGN_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
    -R 'RunShards|ConfiguredThreads|RngFork|ThreadClockScope|CampaignParallel|Fault' \
    -j "$(nproc)"
fi

echo "== check.sh: all green =="
