#!/usr/bin/env bash
# Long push-ingestion soak (the nightly long-soak job; also runnable by
# hand before touching the ingest path):
#
#   bench_soak_ingest streams the fig04+fig05 campaign under a stormy
#   fault plan (link loss, duplication, deaf peers, CGN restarts, shard
#   crashes with a retry budget) into a live observatory over the real
#   ingest socket for DURATION seconds, alternating clean cycles with
#   mid-frame disconnect + cursor-resume cycles, and finishing with the
#   frozen-drain overload/shedding leg. While it soaks, this script
#   scrapes the daemon every ~30s with obs_scrape.py --expect-ingest,
#   which asserts the ingest gauges exist and the queue depth stays
#   within capacity (bounded lag). The bench itself exits nonzero on any
#   figure mismatch or unaccounted shedding, and its BENCH_soak_ingest.json
#   must pass the bench_compare.py ingest schema gate.
#
# Usage: scripts/soak_long.sh [builddir] [duration_s]   # default: build 1200
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
DURATION="${2:-1200}"
SOAK="$BUILD/bench/bench_soak_ingest"
OUT="$BUILD/soak-long"
[[ -x "$SOAK" ]] || {
  echo "soak_long: $SOAK not built (cmake --build $BUILD --target bench_soak_ingest)" >&2
  exit 2
}
rm -rf "$OUT"
mkdir -p "$OUT"

# Small world, stormy weather: the same per-hop/per-shard fault knobs the
# fault-campaign tests call a stormy plan, plus shard crashes that the
# retry budget must absorb. The soak is about the ingest path surviving
# hostility for a long time, not about world size.
export CGN_BENCH_SCALE=0.05 CGN_BENCH_SEED=42
export CGN_FAULT_LOSS=0.02 CGN_FAULT_DUP=0.01 CGN_FAULT_UNRESP=0.10
export CGN_FAULT_RESTART_S=900
export CGN_FAULT_SHARD_CRASH=0.2 CGN_SUPER_ATTEMPTS=3
export CGN_SOAK_DURATION_S="$DURATION"
export CGN_BENCH_JSON_DIR="$OUT"

SOAK_PID=""
cleanup() { [[ -n "$SOAK_PID" ]] && kill "$SOAK_PID" 2>/dev/null || true; }
trap cleanup EXIT

echo "== soak_long: bench_soak_ingest for ${DURATION}s (stormy plan) =="
"$SOAK" > "$OUT/soak.log" 2>&1 &
SOAK_PID=$!

# The bench announces its HTTP port exactly like cgn_observatoryd.
PORT=""
for _ in $(seq 1 600); do
  PORT=$(sed -n 's/^observatory: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$OUT/soak.log" | head -n1)
  [[ -n "$PORT" ]] && break
  kill -0 "$SOAK_PID" 2>/dev/null || {
    echo "soak_long: bench died before announcing a port:" >&2
    cat "$OUT/soak.log" >&2; exit 1; }
  sleep 0.5
done
[[ -n "$PORT" ]] || {
  echo "soak_long: no listening line in $OUT/soak.log" >&2; exit 1; }
OBS_URL="http://127.0.0.1:$PORT"
echo "soak_long: scraping $OBS_URL every 30s"

# Periodic scrapes while the soak runs: the gauges must stay present and
# the ingest queue bounded the whole time, not just at the end.
SCRAPES=0
while kill -0 "$SOAK_PID" 2>/dev/null; do
  # The overload leg at the very end legitimately freezes the drain; a
  # scrape that races the teardown would see a vanished socket, so only
  # fail a scrape while the soak is still confirmed alive afterwards.
  if python3 scripts/obs_scrape.py "$OBS_URL" --expect-ingest \
      > "$OUT/scrape_$SCRAPES.log" 2>&1; then
    SCRAPES=$((SCRAPES + 1))
  elif kill -0 "$SOAK_PID" 2>/dev/null; then
    echo "soak_long: mid-soak scrape failed:" >&2
    cat "$OUT/scrape_$SCRAPES.log" >&2
    exit 1
  fi
  for _ in $(seq 1 60); do
    kill -0 "$SOAK_PID" 2>/dev/null || break
    sleep 0.5
  done
done

rc=0
wait "$SOAK_PID" || rc=$?
SOAK_PID=""
tail -n 5 "$OUT/soak.log"
if [[ "$rc" -ne 0 ]]; then
  echo "soak_long: bench_soak_ingest exited $rc" >&2
  cat "$OUT/soak.log" >&2
  exit 1
fi
[[ "$SCRAPES" -ge 1 ]] || {
  echo "soak_long: soak finished before a single scrape landed" >&2; exit 1; }
echo "soak_long: $SCRAPES mid-soak scrapes, all green"

echo "== soak_long: schema gate on BENCH_soak_ingest.json =="
python3 scripts/bench_compare.py --schema-check "$OUT/BENCH_soak_ingest.json"

echo "== soak_long: all green =="
