#!/usr/bin/env python3
"""Scrape and validate a running cgn_observatoryd endpoint.

Usage:
    scripts/obs_scrape.py BASE_URL [--wait-done [--timeout S]]
                          [--campaign NAME] [--expect-ingest]
                          [--compare NAME=BENCH_JSON ...]

BASE_URL is the daemon root, e.g. http://127.0.0.1:9464 (the daemon prints
"observatory: listening on 127.0.0.1:PORT" at startup).

What it checks, in order:
  * --wait-done: poll GET /health until "status" is "complete" (the stream
    finished and ingest lag drained to 0), failing after --timeout seconds
    (default 300). With --campaign NAME it instead waits for the push
    campaign NAME to report done with zero lag under /health "push".
    Transient connection refusals (daemon still binding, or briefly
    between accept loops) are retried until the deadline;
  * GET /health is valid JSON with the expected top-level shape; when the
    push block is present its queue_depth must not exceed queue_capacity
    and every per-campaign lag must be non-negative (bounded-lag check);
  * GET /metrics is a well-formed Prometheus text exposition: every sample
    is preceded by its # TYPE line, histogram _bucket series are
    cumulative-monotone, carry an le="+Inf" bucket, and agree with their
    _count; the observatory's own gauges are present. --expect-ingest
    additionally requires the push-ingestion gauges
    (cgn_observatory_ingest_{queue_depth,shed_total,rejected_total,
    max_lag}) and a queue depth within the health-reported capacity;
  * GET /trace is valid JSON;
  * each --compare NAME=PATH: the observatory figure set NAME under GET
    /figures (or GET /figures/<campaign> with --campaign) must carry
    exactly the figures of the batch bench JSON at PATH (e.g.
    fig04_clusters=BENCH_fig04_clusters.json) — this is the
    streaming==batch acceptance bar, checked value-for-value.

Exit codes: 0 all checks pass, 1 a check failed, 2 bad input/unreachable.
"""

import json
import re
import sys
import time
import urllib.error
import urllib.request

DEFAULT_TIMEOUT_S = 300.0

HEALTH_KEYS = ("status", "uptime_s", "window_s", "ingest", "windows",
               "campaigns", "http_requests")

# One sample line: name, optional {labels}, value. Prometheus names as the
# registry emits them (cgn_ prefix, [a-zA-Z0-9_]).
SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LE_RE = re.compile(r'le="([^"]+)"')


class CheckFailed(Exception):
    pass


def fetch(url, timeout=10.0, retries=3):
    """GET url, retrying transient connection refusals/resets a few times
    (an observatoryd that just announced its port may not have entered its
    accept loop yet; a feeder kill can race a scrape)."""
    last = None
    for attempt in range(retries + 1):
        try:
            with urllib.request.urlopen(url, timeout=timeout) as resp:
                return resp.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as e:
            last = e
            reason = getattr(e, "reason", e)
            transient = isinstance(reason, (ConnectionRefusedError,
                                            ConnectionResetError))
            if not transient or attempt == retries:
                break
            time.sleep(0.2)
    raise CheckFailed(f"{url}: unreachable ({last})")


def fetch_json(url):
    body = fetch(url)
    try:
        return json.loads(body)
    except json.JSONDecodeError as e:
        raise CheckFailed(f"{url}: not valid JSON ({e.msg} at line {e.lineno})")


def wait_done(base, timeout_s, campaign=None):
    deadline = time.monotonic() + timeout_s
    what = (f"push campaign {campaign!r} done with lag 0" if campaign
            else "status=complete")
    while True:
        try:
            health = fetch_json(base + "/health")
            if campaign is None:
                if health.get("status") == "complete":
                    lag = health.get("ingest", {}).get("lag")
                    print(f"ok   /health: stream complete (ingest lag {lag})")
                    return
            else:
                ch = (health.get("push", {}).get("campaigns", {})
                      .get(campaign, {}))
                if ch.get("done") and ch.get("lag") == 0:
                    print(f"ok   /health: campaign {campaign!r} done "
                          f"({ch.get('ingested')} events, lag 0)")
                    return
        except CheckFailed:
            pass  # daemon may still be binding; keep polling until deadline
        if time.monotonic() > deadline:
            raise CheckFailed(f"/health did not reach {what} "
                              f"within {timeout_s}s")
        time.sleep(0.2)


def check_health(base, expect_ingest=False):
    health = fetch_json(base + "/health")
    missing = [k for k in HEALTH_KEYS if k not in health]
    if missing:
        raise CheckFailed(f"/health: missing keys {missing}")
    push = health.get("push")
    if expect_ingest and push is None:
        raise CheckFailed("/health: no \"push\" block (is the ingest "
                          "listener running?)")
    if push is not None:
        depth, cap = push.get("queue_depth"), push.get("queue_capacity")
        if depth is None or cap is None or depth > cap:
            raise CheckFailed(f"/health: push queue depth {depth} exceeds "
                              f"capacity {cap} — lag is not bounded")
        for key in ("shed_total", "rejected_total"):
            if not isinstance(push.get(key), int) or push[key] < 0:
                raise CheckFailed(f"/health: push.{key} missing or negative: "
                                  f"{push.get(key)!r}")
        for name, ch in push.get("campaigns", {}).items():
            lag = ch.get("lag")
            if not isinstance(lag, int) or lag < 0:
                raise CheckFailed(f"/health: campaign {name!r} lag broken: "
                                  f"{lag!r}")
        print(f"ok   /health: push queue {depth}/{cap}, "
              f"shed {push['shed_total']}, rejected {push['rejected_total']}, "
              f"{len(push.get('campaigns', {}))} push campaign(s)")
    print(f"ok   /health: shape valid (status={health['status']!r}, "
          f"{health['ingest']['ingested']} events ingested)")
    return health


def parse_exposition(text):
    """Return (samples, types): sample list [(name, labels, value)] and
    declared # TYPE map, validating line-level syntax as we go."""
    samples, types = [], {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise CheckFailed(f"/metrics:{lineno}: malformed TYPE line: "
                                  f"{line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            raise CheckFailed(f"/metrics:{lineno}: unknown comment {line!r}")
        m = SAMPLE_RE.match(line)
        if not m:
            raise CheckFailed(f"/metrics:{lineno}: malformed sample {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            samples.append((name, labels, float(value)))
        except ValueError:
            raise CheckFailed(f"/metrics:{lineno}: non-numeric value in "
                              f"{line!r}")
    return samples, types


def base_name(name):
    """Histogram child series resolve to their declared base metric."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_metrics(base, expect_ingest=False):
    text = fetch(base + "/metrics")
    samples, types = parse_exposition(text)
    if not samples:
        raise CheckFailed("/metrics: no samples at all")

    for name, _, _ in samples:
        if name not in types and base_name(name) not in types:
            raise CheckFailed(f"/metrics: sample {name} has no # TYPE line")

    # Histogram invariants: buckets cumulative-monotone, +Inf present and
    # equal to _count.
    hist_names = [n for n, t in types.items() if t == "histogram"]
    for hist in hist_names:
        buckets = [(LE_RE.search(labels).group(1), value)
                   for name, labels, value in samples
                   if name == hist + "_bucket" and LE_RE.search(labels)]
        if not buckets:
            raise CheckFailed(f"/metrics: histogram {hist} has no buckets")
        if buckets[-1][0] != "+Inf":
            raise CheckFailed(f"/metrics: histogram {hist} lacks a trailing "
                              "le=\"+Inf\" bucket")
        values = [v for _, v in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            raise CheckFailed(f"/metrics: histogram {hist} buckets are not "
                              f"cumulative-monotone: {values}")
        counts = [v for name, _, v in samples if name == hist + "_count"]
        if not counts or counts[0] != values[-1]:
            raise CheckFailed(f"/metrics: histogram {hist} +Inf bucket "
                              f"{values[-1]} != _count {counts}")

    required = ["cgn_observatory_ingest_lag",
                "cgn_observatory_http_requests"]
    if expect_ingest:
        required += ["cgn_observatory_ingest_queue_depth",
                     "cgn_observatory_ingest_shed_total",
                     "cgn_observatory_ingest_rejected_total",
                     "cgn_observatory_ingest_max_lag"]
    for req in required:
        if not any(name == req for name, _, _ in samples):
            raise CheckFailed(f"/metrics: missing required sample {req}")
    if expect_ingest:
        by_name = {name: value for name, _, value in samples}
        for gauge in ("cgn_observatory_ingest_queue_depth",
                      "cgn_observatory_ingest_shed_total",
                      "cgn_observatory_ingest_rejected_total",
                      "cgn_observatory_ingest_max_lag"):
            if by_name[gauge] < 0:
                raise CheckFailed(f"/metrics: {gauge} is negative "
                                  f"({by_name[gauge]})")

    print(f"ok   /metrics: {len(samples)} samples, {len(types)} metrics "
          f"({len(hist_names)} histograms), exposition well-formed")


def check_compare(base, spec, campaign=None):
    name, _, path = spec.partition("=")
    if not path:
        raise CheckFailed(f"--compare {spec!r}: expected NAME=BENCH_JSON")
    figures_url = base + ("/figures/" + campaign if campaign else "/figures")
    figures_doc = fetch_json(figures_url)
    sets = figures_doc.get("figure_sets", {})
    if name not in sets:
        raise CheckFailed(f"/figures: no figure set {name!r} "
                          f"(have {sorted(sets)})")
    stream = sets[name].get("figures", {})
    try:
        with open(path) as f:
            batch = json.load(f).get("figures", {})
    except (OSError, json.JSONDecodeError) as e:
        raise CheckFailed(f"--compare {spec!r}: cannot load batch JSON ({e})")
    if stream != batch:
        diff = {k: (batch.get(k), stream.get(k))
                for k in sorted(set(batch) | set(stream))
                if batch.get(k) != stream.get(k)}
        raise CheckFailed(f"figure set {name!r} diverges from batch "
                          f"(batch, stream): {diff}")
    print(f"ok   /figures[{name}]: {len(stream)} figures identical to "
          f"batch {path}")


def main(argv):
    if len(argv) < 2 or argv[1].startswith("-"):
        print(__doc__, file=sys.stderr)
        return 2
    base = argv[1].rstrip("/")
    compares, do_wait, timeout_s = [], False, DEFAULT_TIMEOUT_S
    campaign, expect_ingest = None, False
    i = 2
    while i < len(argv):
        arg = argv[i]
        if arg == "--wait-done":
            do_wait = True
        elif arg == "--campaign":
            i += 1
            if i >= len(argv):
                print("obs_scrape: --campaign needs a name", file=sys.stderr)
                return 2
            campaign = argv[i]
        elif arg == "--expect-ingest":
            expect_ingest = True
        elif arg == "--timeout":
            i += 1
            if i >= len(argv):
                print("obs_scrape: --timeout needs a value", file=sys.stderr)
                return 2
            timeout_s = float(argv[i])
        elif arg == "--compare":
            i += 1
            if i >= len(argv):
                print("obs_scrape: --compare needs NAME=PATH",
                      file=sys.stderr)
                return 2
            compares.append(argv[i])
        else:
            print(f"obs_scrape: unknown argument {arg!r}", file=sys.stderr)
            return 2
        i += 1

    if do_wait:
        wait_done(base, timeout_s, campaign)
    check_health(base, expect_ingest)
    check_metrics(base, expect_ingest)
    fetch_json(base + "/trace")
    print("ok   /trace: valid JSON")
    for spec in compares:
        check_compare(base, spec, campaign)
    print("obs_scrape: OK")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except CheckFailed as e:
        print(f"obs_scrape: FAIL: {e}", file=sys.stderr)
        sys.exit(1)
