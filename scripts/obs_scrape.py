#!/usr/bin/env python3
"""Scrape and validate a running cgn_observatoryd endpoint.

Usage:
    scripts/obs_scrape.py BASE_URL [--wait-done [--timeout S]]
                          [--compare NAME=BENCH_JSON ...]

BASE_URL is the daemon root, e.g. http://127.0.0.1:9464 (the daemon prints
"observatory: listening on 127.0.0.1:PORT" at startup).

What it checks, in order:
  * --wait-done: poll GET /health until "status" is "complete" (the stream
    finished and ingest lag drained to 0), failing after --timeout seconds
    (default 300);
  * GET /health is valid JSON with the expected top-level shape;
  * GET /metrics is a well-formed Prometheus text exposition: every sample
    is preceded by its # TYPE line, histogram _bucket series are
    cumulative-monotone, carry an le="+Inf" bucket, and agree with their
    _count; the observatory's own gauges are present;
  * GET /trace is valid JSON;
  * each --compare NAME=PATH: the observatory figure set NAME under GET
    /figures must carry exactly the figures of the batch bench JSON at
    PATH (e.g. fig04_clusters=BENCH_fig04_clusters.json) — this is the
    streaming==batch acceptance bar, checked value-for-value.

Exit codes: 0 all checks pass, 1 a check failed, 2 bad input/unreachable.
"""

import json
import re
import sys
import time
import urllib.error
import urllib.request

DEFAULT_TIMEOUT_S = 300.0

HEALTH_KEYS = ("status", "uptime_s", "window_s", "ingest", "windows",
               "campaigns", "http_requests")

# One sample line: name, optional {labels}, value. Prometheus names as the
# registry emits them (cgn_ prefix, [a-zA-Z0-9_]).
SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LE_RE = re.compile(r'le="([^"]+)"')


class CheckFailed(Exception):
    pass


def fetch(url, timeout=10.0):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as e:
        raise CheckFailed(f"{url}: unreachable ({e})")


def fetch_json(url):
    body = fetch(url)
    try:
        return json.loads(body)
    except json.JSONDecodeError as e:
        raise CheckFailed(f"{url}: not valid JSON ({e.msg} at line {e.lineno})")


def wait_done(base, timeout_s):
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            health = fetch_json(base + "/health")
            if health.get("status") == "complete":
                lag = health.get("ingest", {}).get("lag")
                print(f"ok   /health: stream complete (ingest lag {lag})")
                return
        except CheckFailed:
            pass  # daemon may still be binding; keep polling until deadline
        if time.monotonic() > deadline:
            raise CheckFailed(
                f"/health did not reach status=complete within {timeout_s}s")
        time.sleep(0.2)


def check_health(base):
    health = fetch_json(base + "/health")
    missing = [k for k in HEALTH_KEYS if k not in health]
    if missing:
        raise CheckFailed(f"/health: missing keys {missing}")
    print(f"ok   /health: shape valid (status={health['status']!r}, "
          f"{health['ingest']['ingested']} events ingested)")
    return health


def parse_exposition(text):
    """Return (samples, types): sample list [(name, labels, value)] and
    declared # TYPE map, validating line-level syntax as we go."""
    samples, types = [], {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise CheckFailed(f"/metrics:{lineno}: malformed TYPE line: "
                                  f"{line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            raise CheckFailed(f"/metrics:{lineno}: unknown comment {line!r}")
        m = SAMPLE_RE.match(line)
        if not m:
            raise CheckFailed(f"/metrics:{lineno}: malformed sample {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            samples.append((name, labels, float(value)))
        except ValueError:
            raise CheckFailed(f"/metrics:{lineno}: non-numeric value in "
                              f"{line!r}")
    return samples, types


def base_name(name):
    """Histogram child series resolve to their declared base metric."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_metrics(base):
    text = fetch(base + "/metrics")
    samples, types = parse_exposition(text)
    if not samples:
        raise CheckFailed("/metrics: no samples at all")

    for name, _, _ in samples:
        if name not in types and base_name(name) not in types:
            raise CheckFailed(f"/metrics: sample {name} has no # TYPE line")

    # Histogram invariants: buckets cumulative-monotone, +Inf present and
    # equal to _count.
    hist_names = [n for n, t in types.items() if t == "histogram"]
    for hist in hist_names:
        buckets = [(LE_RE.search(labels).group(1), value)
                   for name, labels, value in samples
                   if name == hist + "_bucket" and LE_RE.search(labels)]
        if not buckets:
            raise CheckFailed(f"/metrics: histogram {hist} has no buckets")
        if buckets[-1][0] != "+Inf":
            raise CheckFailed(f"/metrics: histogram {hist} lacks a trailing "
                              "le=\"+Inf\" bucket")
        values = [v for _, v in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            raise CheckFailed(f"/metrics: histogram {hist} buckets are not "
                              f"cumulative-monotone: {values}")
        counts = [v for name, _, v in samples if name == hist + "_count"]
        if not counts or counts[0] != values[-1]:
            raise CheckFailed(f"/metrics: histogram {hist} +Inf bucket "
                              f"{values[-1]} != _count {counts}")

    for required in ("cgn_observatory_ingest_lag",
                     "cgn_observatory_http_requests"):
        if not any(name == required for name, _, _ in samples):
            raise CheckFailed(f"/metrics: missing required sample {required}")

    print(f"ok   /metrics: {len(samples)} samples, {len(types)} metrics "
          f"({len(hist_names)} histograms), exposition well-formed")


def check_compare(base, spec):
    name, _, path = spec.partition("=")
    if not path:
        raise CheckFailed(f"--compare {spec!r}: expected NAME=BENCH_JSON")
    figures_doc = fetch_json(base + "/figures")
    sets = figures_doc.get("figure_sets", {})
    if name not in sets:
        raise CheckFailed(f"/figures: no figure set {name!r} "
                          f"(have {sorted(sets)})")
    stream = sets[name].get("figures", {})
    try:
        with open(path) as f:
            batch = json.load(f).get("figures", {})
    except (OSError, json.JSONDecodeError) as e:
        raise CheckFailed(f"--compare {spec!r}: cannot load batch JSON ({e})")
    if stream != batch:
        diff = {k: (batch.get(k), stream.get(k))
                for k in sorted(set(batch) | set(stream))
                if batch.get(k) != stream.get(k)}
        raise CheckFailed(f"figure set {name!r} diverges from batch "
                          f"(batch, stream): {diff}")
    print(f"ok   /figures[{name}]: {len(stream)} figures identical to "
          f"batch {path}")


def main(argv):
    if len(argv) < 2 or argv[1].startswith("-"):
        print(__doc__, file=sys.stderr)
        return 2
    base = argv[1].rstrip("/")
    compares, do_wait, timeout_s = [], False, DEFAULT_TIMEOUT_S
    i = 2
    while i < len(argv):
        arg = argv[i]
        if arg == "--wait-done":
            do_wait = True
        elif arg == "--timeout":
            i += 1
            if i >= len(argv):
                print("obs_scrape: --timeout needs a value", file=sys.stderr)
                return 2
            timeout_s = float(argv[i])
        elif arg == "--compare":
            i += 1
            if i >= len(argv):
                print("obs_scrape: --compare needs NAME=PATH",
                      file=sys.stderr)
                return 2
            compares.append(argv[i])
        else:
            print(f"obs_scrape: unknown argument {arg!r}", file=sys.stderr)
            return 2
        i += 1

    if do_wait:
        wait_done(base, timeout_s)
    check_health(base)
    check_metrics(base)
    fetch_json(base + "/trace")
    print("ok   /trace: valid JSON")
    for spec in compares:
        check_compare(base, spec)
    print("obs_scrape: OK")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except CheckFailed as e:
        print(f"obs_scrape: FAIL: {e}", file=sys.stderr)
        sys.exit(1)
