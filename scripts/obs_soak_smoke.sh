#!/usr/bin/env bash
# Observatory soak smoke (scripts/check.sh soak; the ci.yml soak-smoke job):
#
#  1. batch leg: bench_fig04_clusters + bench_fig05_netalyzr_candidates at
#     a small scale write BENCH_*.json — the ground truth;
#  2. live leg: cgn_observatoryd streams the same campaigns on an
#     ephemeral port; scripts/obs_scrape.py waits for the stream to
#     complete, schema-checks /metrics//health//trace, and asserts the
#     /figures sets are value-identical to the batch JSONs;
#  3. kill leg: the daemon reruns with --abort-after-shards 2 and a
#     checkpoint dir, and must die with exit 3 (campaign aborted);
#  4. resume leg: rerun at 4 workers against the same checkpoint dir —
#     the resumed stream must still converge on the batch figures.
#  5. push leg: a --no-stream daemon with an ingest listener; an external
#     cgn_feeder pushes the same campaign over the framed socket, gets
#     kill -9'd mid-stream, reruns, and resumes from the server's cursor —
#     /figures/<campaign> must still equal the batch JSONs, the scrape
#     validates the ingest gauges, and the whole dance repeats at 4
#     workers into a second campaign channel.
#
# Usage: scripts/obs_soak_smoke.sh [builddir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
DAEMON="$BUILD/src/observatory/cgn_observatoryd"
FEEDER="$BUILD/src/observatory/cgn_feeder"
BENCH="$BUILD/bench"
OUT="$BUILD/obs-soak"
[[ -x "$DAEMON" ]] || {
  echo "obs_soak_smoke: $DAEMON not built" >&2; exit 2; }
[[ -x "$FEEDER" ]] || {
  echo "obs_soak_smoke: $FEEDER not built" >&2; exit 2; }
rm -rf "$OUT"
mkdir -p "$OUT/batch" "$OUT/ckpt"

# Same world for every leg; small enough that each campaign runs in
# seconds, big enough that fig04/fig05 are non-trivial.
export CGN_BENCH_SCALE=0.05 CGN_BENCH_SEED=42
export CGN_OBSERVATORY_WINDOW_S=600

DAEMON_PID=""
cleanup() { [[ -n "$DAEMON_PID" ]] && kill "$DAEMON_PID" 2>/dev/null || true; }
trap cleanup EXIT

# Start the daemon with "$@" extra args, parse the ephemeral port it
# announces, and export OBS_URL.
start_daemon() {
  local log="$1"; shift
  "$DAEMON" --port 0 "$@" >"$log" 2>&1 &
  DAEMON_PID=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^observatory: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$log" | head -n1)
    [[ -n "$port" ]] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || {
      echo "obs_soak_smoke: daemon died before announcing a port:" >&2
      cat "$log" >&2; exit 1; }
    sleep 0.1
  done
  [[ -n "$port" ]] || {
    echo "obs_soak_smoke: no listening line in $log" >&2; exit 1; }
  OBS_URL="http://127.0.0.1:$port"
}

# Parse the ingest announce line out of a daemon log into INGEST_PORT.
parse_ingest_port() {
  local log="$1"
  INGEST_PORT=""
  for _ in $(seq 1 100); do
    INGEST_PORT=$(sed -n \
      's/^observatory: ingest on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$log" | head -n1)
    [[ -n "$INGEST_PORT" ]] && return 0
    sleep 0.1
  done
  echo "obs_soak_smoke: no ingest line in $log" >&2; exit 1
}

# Poll /health until the push campaign has ingested at least N events (so
# a kill -9 lands provably mid-stream).
wait_push_ingested() {
  python3 - "$OBS_URL" "$1" "$2" <<'EOF'
import json, sys, time, urllib.request
url, campaign, min_n = sys.argv[1], sys.argv[2], int(sys.argv[3])
deadline = time.monotonic() + 120
while time.monotonic() < deadline:
    try:
        with urllib.request.urlopen(url + "/health", timeout=5) as r:
            h = json.load(r)
        ch = h.get("push", {}).get("campaigns", {}).get(campaign, {})
        if ch.get("ingested", 0) >= min_n:
            sys.exit(0)
    except OSError:
        pass
    time.sleep(0.05)
print(f"never saw {min_n} ingested events for campaign {campaign}",
      file=sys.stderr)
sys.exit(1)
EOF
}

stop_daemon() {
  kill "$DAEMON_PID" 2>/dev/null || true
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
}

echo "== obs-soak: batch fig04 + fig05 (ground truth) =="
CGN_BENCH_JSON_DIR="$OUT/batch" "$BENCH/bench_fig04_clusters" \
  > "$OUT/batch/fig04_stdout.txt"
CGN_BENCH_JSON_DIR="$OUT/batch" "$BENCH/bench_fig05_netalyzr_candidates" \
  > "$OUT/batch/fig05_stdout.txt"

echo "== obs-soak: live daemon, scrape + figure equality =="
start_daemon "$OUT/daemon_live.log"
python3 scripts/obs_scrape.py "$OBS_URL" --wait-done --timeout 300 \
  --compare "fig04_clusters=$OUT/batch/BENCH_fig04_clusters.json" \
  --compare "fig05_netalyzr_candidates=$OUT/batch/BENCH_fig05_netalyzr_candidates.json"
stop_daemon

echo "== obs-soak: kill leg (--abort-after-shards 2 must exit 3) =="
rc=0
CGN_SUPER_CHECKPOINT_DIR="$OUT/ckpt" \
  "$DAEMON" --port 0 --abort-after-shards 2 --exit-after-stream \
  > "$OUT/daemon_abort.log" 2>&1 || rc=$?
if [[ "$rc" -ne 3 ]]; then
  echo "obs_soak_smoke: abort leg exited $rc, expected 3" >&2
  cat "$OUT/daemon_abort.log" >&2
  exit 1
fi
[[ -f "$OUT/ckpt/netalyzr.ckpt" ]] || {
  echo "obs_soak_smoke: abort leg left no netalyzr checkpoint" >&2; exit 1; }
echo "ok   daemon aborted with exit 3 and wrote $OUT/ckpt/netalyzr.ckpt"

echo "== obs-soak: resume leg (4 workers, same checkpoint dir) =="
export CGN_THREADS=4 CGN_SUPER_CHECKPOINT_DIR="$OUT/ckpt"
start_daemon "$OUT/daemon_resume.log"
python3 scripts/obs_scrape.py "$OBS_URL" --wait-done --timeout 300 \
  --compare "fig04_clusters=$OUT/batch/BENCH_fig04_clusters.json" \
  --compare "fig05_netalyzr_candidates=$OUT/batch/BENCH_fig05_netalyzr_candidates.json"
stop_daemon

echo "== obs-soak: push leg (feeder, kill -9 mid-stream, resume) =="
export CGN_THREADS=1
unset CGN_SUPER_CHECKPOINT_DIR
mkdir -p "$OUT/feeder-ckpt" "$OUT/feeder-ckpt4"
start_daemon "$OUT/daemon_push.log" --no-stream --ingest-port 0
parse_ingest_port "$OUT/daemon_push.log"

# Paced feeder so the kill lands mid-stream; then murder it outright.
CGN_SUPER_CHECKPOINT_DIR="$OUT/feeder-ckpt" \
  "$FEEDER" --connect "$INGEST_PORT" --campaign push --pace-us 2000 \
  > "$OUT/feeder_killed.log" 2>&1 &
FEEDER_PID=$!
wait_push_ingested push 100
kill -9 "$FEEDER_PID" 2>/dev/null || true
wait "$FEEDER_PID" 2>/dev/null || true
echo "ok   feeder killed -9 mid-stream"

# Rerun: shard checkpoints resume the regeneration, the server's hello
# cursor skips everything already ingested. Must finish clean.
CGN_SUPER_CHECKPOINT_DIR="$OUT/feeder-ckpt" \
  "$FEEDER" --connect "$INGEST_PORT" --campaign push \
  > "$OUT/feeder_resume.log" 2>&1 || {
  echo "obs_soak_smoke: feeder resume failed:" >&2
  cat "$OUT/feeder_resume.log" >&2; exit 1; }
grep -q "feeder: done" "$OUT/feeder_resume.log" || {
  echo "obs_soak_smoke: feeder resume never reported done" >&2; exit 1; }
python3 scripts/obs_scrape.py "$OBS_URL" --wait-done --timeout 300 \
  --campaign push --expect-ingest \
  --compare "fig04_clusters=$OUT/batch/BENCH_fig04_clusters.json" \
  --compare "fig05_netalyzr_candidates=$OUT/batch/BENCH_fig05_netalyzr_candidates.json"

echo "== obs-soak: push leg at 4 workers =="
CGN_THREADS=4 CGN_SUPER_CHECKPOINT_DIR="$OUT/feeder-ckpt4" \
  "$FEEDER" --connect "$INGEST_PORT" --campaign push4 \
  > "$OUT/feeder_push4.log" 2>&1 || {
  echo "obs_soak_smoke: 4-worker feeder failed:" >&2
  cat "$OUT/feeder_push4.log" >&2; exit 1; }
python3 scripts/obs_scrape.py "$OBS_URL" --wait-done --timeout 300 \
  --campaign push4 --expect-ingest \
  --compare "fig04_clusters=$OUT/batch/BENCH_fig04_clusters.json" \
  --compare "fig05_netalyzr_candidates=$OUT/batch/BENCH_fig05_netalyzr_candidates.json"
stop_daemon

echo "== obs_soak_smoke: all green =="
