#!/usr/bin/env bash
# Bench smoke gate (scripts/check.sh bench; the ci.yml bench-smoke job):
#
#  1. bench_perf_micro, three runs at 1 worker -> median phase timings and
#     echo_roundtrip_ns compared against bench/baselines/perf_micro.json
#     via scripts/bench_compare.py (warn >10%, fail >30%);
#  2. bench_perf_micro once at 4 workers -> its parallel_identical figure
#     asserts the 1/2/4-worker campaign fingerprints are byte-identical,
#     and the 1/2/4-worker campaign wall timings plus speedup/CPU
#     efficiency are summarized into <builddir>/bench-smoke/scaling.json
#     for upload alongside the raw BENCH_*.json artifacts;
#  3. bench_fig01_survey at 1 and 4 workers -> the JSON "figures" objects
#     must be byte-identical (thread count must never leak into results);
#  4. transition smoke: bench_fig14_transition at 1 and 4 workers -> the
#     fig14 figures must be byte-identical too, and the detect_acc_*
#     figures must pass the transition schema check in bench_compare.py.
#
# JSON artifacts land in <builddir>/bench-smoke/ for upload.
#
# Usage: scripts/bench_smoke.sh [builddir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BENCH="$BUILD/bench"
OUT="$BUILD/bench-smoke"
[[ -x "$BENCH/bench_perf_micro" ]] || {
  echo "bench_smoke: $BENCH/bench_perf_micro not built" >&2; exit 2; }
rm -rf "$OUT"
mkdir -p "$OUT"/run1 "$OUT"/run2 "$OUT"/run3 "$OUT"/t4 "$OUT"/fig01_t1 "$OUT"/fig01_t4 \
         "$OUT"/fig14_t1 "$OUT"/fig14_t4

echo "== bench-smoke: perf_micro x3 at 1 worker =="
for run in 1 2 3; do
  CGN_THREADS=1 CGN_BENCH_JSON_DIR="$OUT/run$run" \
    "$BENCH/bench_perf_micro" --benchmark_min_time=0.05 \
    > "$OUT/run$run/stdout.txt"
done

echo "== bench-smoke: perf_micro at 4 workers =="
CGN_THREADS=4 CGN_BENCH_JSON_DIR="$OUT/t4" \
  "$BENCH/bench_perf_micro" --benchmark_min_time=0.05 > "$OUT/t4/stdout.txt"

echo "== bench-smoke: fig01 figures at 1 vs 4 workers =="
CGN_THREADS=1 CGN_BENCH_JSON_DIR="$OUT/fig01_t1" \
  "$BENCH/bench_fig01_survey" --benchmark_min_time=0.05 \
  > "$OUT/fig01_t1/stdout.txt"
CGN_THREADS=4 CGN_BENCH_JSON_DIR="$OUT/fig01_t4" \
  "$BENCH/bench_fig01_survey" --benchmark_min_time=0.05 \
  > "$OUT/fig01_t4/stdout.txt"

echo "== bench-smoke: transition (fig14) figures at 1 vs 4 workers =="
CGN_THREADS=1 CGN_BENCH_JSON_DIR="$OUT/fig14_t1" \
  "$BENCH/bench_fig14_transition" --benchmark_min_time=0.05 \
  > "$OUT/fig14_t1/stdout.txt"
CGN_THREADS=4 CGN_BENCH_JSON_DIR="$OUT/fig14_t4" \
  "$BENCH/bench_fig14_transition" --benchmark_min_time=0.05 \
  > "$OUT/fig14_t4/stdout.txt"

python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]

t4 = json.load(open(f"{out}/t4/BENCH_perf_micro.json"))
ident = t4["figures"].get("parallel_identical")
assert ident == 1, f"parallel_identical={ident}: worker fingerprints diverged"
print("ok   perf_micro@4 workers: campaign fingerprints byte-identical")

figs = t4["figures"]
scaling = {
    "hardware_cores": figs.get("hardware_cores"),
    "netalyzr_campaign_s_1t": figs.get("netalyzr_campaign_s_1t"),
    "netalyzr_campaign_s_2t": figs.get("netalyzr_campaign_s_2t"),
    "netalyzr_campaign_s_4t": figs.get("netalyzr_campaign_s_4t"),
    "netalyzr_speedup_4t": figs.get("netalyzr_speedup_4t"),
    "netalyzr_cpu_s_1t": figs.get("netalyzr_cpu_s_1t"),
    "netalyzr_cpu_s_4t": figs.get("netalyzr_cpu_s_4t"),
    "netalyzr_cpu_efficiency_4t": figs.get("netalyzr_cpu_efficiency_4t"),
}
with open(f"{out}/scaling.json", "w") as f:
    json.dump(scaling, f, indent=2, sort_keys=True)
    f.write("\n")
parts = ", ".join(f"{k.rsplit('_', 1)[-1]}={scaling[f'netalyzr_campaign_s_{k[-2:]}']}"
                  for k in ("s_1t", "s_2t", "s_4t")
                  if scaling.get(f"netalyzr_campaign_s_{k[-2:]}") is not None)
print(f"ok   scaling.json: campaign walls [{parts}] "
      f"speedup_4t={scaling['netalyzr_speedup_4t']} "
      f"cpu_efficiency_4t={scaling['netalyzr_cpu_efficiency_4t']} "
      f"cores={scaling['hardware_cores']}")

f1 = json.load(open(f"{out}/fig01_t1/BENCH_fig01_survey.json"))["figures"]
f4 = json.load(open(f"{out}/fig01_t4/BENCH_fig01_survey.json"))["figures"]
assert json.dumps(f1, sort_keys=True) == json.dumps(f4, sort_keys=True), \
    f"fig01 figures differ between 1 and 4 workers:\n{f1}\n{f4}"
print("ok   fig01 figures byte-identical at 1 vs 4 workers")

t1 = json.load(open(f"{out}/fig14_t1/BENCH_fig14_transition.json"))["figures"]
t4 = json.load(open(f"{out}/fig14_t4/BENCH_fig14_transition.json"))["figures"]
assert json.dumps(t1, sort_keys=True) == json.dumps(t4, sort_keys=True), \
    f"fig14 figures differ between 1 and 4 workers:\n{t1}\n{t4}"
assert t1.get("observed_sessions", 0) > 0, \
    "fig14 battery produced no transition sessions"
print("ok   fig14 transition figures byte-identical at 1 vs 4 workers "
      f"({t1['observed_sessions']:.0f} battery sessions, "
      f"{t1['scored_ases']:.0f} scored ASes)")
EOF

echo "== bench-smoke: transition schema check (detect_acc_* in [0,1]) =="
python3 scripts/bench_compare.py --schema-check \
  "$OUT"/fig14_t1/BENCH_fig14_transition.json \
  "$OUT"/fig14_t4/BENCH_fig14_transition.json

echo "== bench-smoke: regression gate vs bench/baselines/perf_micro.json =="
python3 scripts/bench_compare.py bench/baselines/perf_micro.json \
  "$OUT"/run1/BENCH_perf_micro.json \
  "$OUT"/run2/BENCH_perf_micro.json \
  "$OUT"/run3/BENCH_perf_micro.json

echo "== bench-smoke: green (artifacts in $OUT) =="
